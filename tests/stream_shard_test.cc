/// Router-stability and merge-determinism coverage for the sharded
/// provenance service (stream/shard_router.h): the FNV-1a routing hash
/// is pinned against goldens (stable across runs and platforms), shard
/// counts partition the pipeline space, and the merged output is
/// byte-identical (fingerprints) to single-session replay at shards ×
/// threads ∈ {1,4,8}² — on plain, fault-injected, and LRU-cached
/// corpora, over the trace, binary, and durable ingest paths.

#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoints.h"
#include "common/parallel.h"
#include "core/features.h"
#include "core/graphlet_analysis.h"
#include "metadata/binary_serialization.h"
#include "simulator/corpus_generator.h"
#include "stream/fingerprint.h"
#include "stream/replay.h"
#include "stream/shard_router.h"

namespace fs = std::filesystem;

namespace mlprov::stream {
namespace {

// ---------------------------------------------------------------------
// Routing invariant

TEST(ShardHashTest, GoldenValues) {
  // Wire-stability pins: these exact values are what every past and
  // future run routes with. A change here is a re-sharding event.
  EXPECT_EQ(ShardHash(0), 12161962213042174405ull);
  EXPECT_EQ(ShardHash(1), 9929646806074584996ull);
  EXPECT_EQ(ShardHash(7), 5465015992139406178ull);
  EXPECT_EQ(ShardHash(42), 18391255480883862255ull);
  EXPECT_EQ(ShardHash(123456789), 16095947281800810009ull);
  static_assert(ShardHash(42) == 18391255480883862255ull,
                "routing hash must be compile-time stable");
}

TEST(ShardHashTest, SameIdSameShardAcrossCalls) {
  for (int64_t id = 0; id < 1000; ++id) {
    for (size_t shards : {1u, 2u, 3u, 4u, 8u, 64u}) {
      const size_t first = ShardOf(id, shards);
      EXPECT_EQ(first, ShardOf(id, shards));
      EXPECT_LT(first, shards);
    }
  }
}

TEST(ShardHashTest, ShardsPartitionThePipelineSpace) {
  // Every pipeline lands on exactly one shard, every shard is somebody's
  // home (for enough pipelines), and the split is roughly balanced.
  for (size_t shards : {2u, 4u, 8u}) {
    std::vector<size_t> counts(shards, 0);
    for (int64_t id = 0; id < 4096; ++id) ++counts[ShardOf(id, shards)];
    size_t total = 0;
    for (size_t shard = 0; shard < shards; ++shard) {
      EXPECT_GT(counts[shard], 0u) << "empty shard " << shard;
      total += counts[shard];
    }
    EXPECT_EQ(total, 4096u);  // total routing: no pipeline lost or doubled
    for (size_t count : counts) {
      EXPECT_GT(count, 4096u / shards / 2);
      EXPECT_LT(count, 4096u / shards * 2);
    }
  }
}

// ---------------------------------------------------------------------
// Merge determinism

sim::CorpusConfig SmallConfig() {
  sim::CorpusConfig config;
  config.num_pipelines = 12;
  config.seed = 777;
  config.horizon_days = 45.0;
  return config;
}

sim::CorpusConfig FaultyConfig() {
  sim::CorpusConfig config = SmallConfig();
  config.seed = 778;
  auto plan = common::FaultPlan::Parse(
      "exec.trainer:transient:0.2,exec.pusher:persistent:0.1,"
      "exec.transform:transient:0.05");
  EXPECT_TRUE(plan.ok());
  config.fault_plan = *plan;
  config.max_retries = 2;
  return config;
}

sim::CorpusConfig CachedConfig() {
  sim::CorpusConfig config = SmallConfig();
  config.seed = 779;
  config.cache_policy = sim::CachePolicy::kLru;
  config.cache_capacity = 64;
  return config;
}

/// Every record a full feed of the corpus emits (the feeder's Finish
/// walk covers every node, context, and event exactly once).
uint64_t TotalFeedRecords(const sim::Corpus& corpus) {
  uint64_t total = 0;
  for (const sim::PipelineTrace& trace : corpus.pipelines) {
    total += trace.store.num_contexts() + trace.store.num_executions() +
             trace.store.num_artifacts() + trace.store.num_events();
  }
  return total;
}

uint64_t FingerprintSegmented(const core::SegmentedCorpus& segmented) {
  uint64_t hash = 14695981039346656037ull;
  for (const core::SegmentedPipeline& sp : segmented.pipelines) {
    hash ^= FingerprintGraphlets(sp.graphlets);
    hash *= 1099511628211ull;
    hash ^= static_cast<uint64_t>(sp.quarantined_graphlets);
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Restores the global thread knob on scope exit so tests do not leak
/// their parallelism setting into each other.
class ScopedThreads {
 public:
  explicit ScopedThreads(int threads) : saved_(common::GlobalThreads()) {
    common::SetGlobalThreads(threads);
  }
  ~ScopedThreads() { common::SetGlobalThreads(saved_); }

 private:
  int saved_;
};

/// The property the whole service is built around: for every shard and
/// thread count, the merged segmentation fingerprint equals the batch
/// (single-session replay) fingerprint.
TEST(ShardMergeTest, ByteIdenticalToBatchAtEveryShardAndThreadCount) {
  for (const sim::CorpusConfig& config :
       {SmallConfig(), FaultyConfig(), CachedConfig()}) {
    const sim::Corpus corpus = sim::GenerateCorpus(config);
    const uint64_t batch =
        FingerprintSegmented(core::SegmentCorpus(corpus));
    for (int threads : {1, 4, 8}) {
      ScopedThreads scoped(threads);
      for (size_t shards : {1u, 4u, 8u}) {
        ShardRouterOptions options;
        options.shards = shards;
        ShardedProvenanceService service(options);
        auto result = service.IngestCorpus(corpus);
        ASSERT_TRUE(result.ok()) << result.status();
        EXPECT_TRUE(result->FirstError().ok()) << result->FirstError();
        EXPECT_EQ(FingerprintSegmented(result->ToSegmentedCorpus()), batch)
            << "corpus seed " << config.seed << " shards " << shards
            << " threads " << threads;
        EXPECT_EQ(result->shed_records, 0u);
        EXPECT_EQ(result->records, TotalFeedRecords(corpus));
      }
    }
  }
}

TEST(ShardMergeTest, SlotsCarryRoutingMetadata) {
  const sim::Corpus corpus = sim::GenerateCorpus(SmallConfig());
  ShardRouterOptions options;
  options.shards = 4;
  ShardedProvenanceService service(options);
  auto result = service.IngestCorpus(corpus);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->pipelines.size(), corpus.pipelines.size());
  for (size_t i = 0; i < result->pipelines.size(); ++i) {
    const ShardPipelineResult& slot = result->pipelines[i];
    EXPECT_EQ(slot.slot, i);
    EXPECT_EQ(slot.pipeline_id, corpus.pipelines[i].config.pipeline_id);
    EXPECT_EQ(slot.shard, ShardOf(slot.pipeline_id, 4));
    EXPECT_GT(slot.records, 0u);
  }
}

/// Decisions and waste accounting merge deterministically too: the
/// sharded scoring run equals a per-pipeline single-session scoring
/// replay, decision for decision.
TEST(ShardMergeTest, ScoringDecisionsMatchSingleSessionReplay) {
  const sim::Corpus train = sim::GenerateCorpus([] {
    sim::CorpusConfig config = SmallConfig();
    config.num_pipelines = 16;
    config.seed = 900;
    return config;
  }());
  auto segmented = core::SegmentCorpus(train);
  auto dataset = core::BuildWasteDataset(train, segmented);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  auto scorer = OnlineScorer::Train(*dataset);
  ASSERT_TRUE(scorer.ok()) << scorer.status();

  const sim::Corpus eval = sim::GenerateCorpus(SmallConfig());
  SessionOptions session;
  session.scorer = &*scorer;
  session.segmenter.seal_grace_hours = 24.0;

  // Reference: one session per pipeline, sequentially.
  std::vector<ScoreDecision> reference;
  WasteAccounting reference_waste;
  for (const sim::PipelineTrace& trace : eval.pipelines) {
    ProvenanceSession single(session);
    ASSERT_TRUE(ReplayTrace(trace, single).ok());
    auto finished = single.Finish();
    ASSERT_TRUE(finished.ok()) << finished.status();
    reference.insert(reference.end(), finished->decisions.begin(),
                     finished->decisions.end());
    reference_waste.decisions += finished->waste.decisions;
    reference_waste.aborts += finished->waste.aborts;
    reference_waste.lost_pushes += finished->waste.lost_pushes;
    reference_waste.avoided_hours += finished->waste.avoided_hours;
  }

  for (int threads : {1, 4, 8}) {
    ScopedThreads scoped(threads);
    for (size_t shards : {1u, 4u, 8u}) {
      ShardRouterOptions options;
      options.shards = shards;
      options.session = session;
      ShardedProvenanceService service(options);
      auto result = service.IngestCorpus(eval);
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_EQ(FingerprintDecisions(result->MergedDecisions()),
                FingerprintDecisions(reference))
          << "shards " << shards << " threads " << threads;
      const WasteAccounting waste = result->TotalWaste();
      EXPECT_EQ(waste.decisions, reference_waste.decisions);
      EXPECT_EQ(waste.aborts, reference_waste.aborts);
      EXPECT_EQ(waste.lost_pushes, reference_waste.lost_pushes);
      EXPECT_DOUBLE_EQ(waste.avoided_hours, reference_waste.avoided_hours);
    }
  }
}

// ---------------------------------------------------------------------
// Sharded zero-copy (binary) path

TEST(ShardBinaryTest, BinaryIngestMatchesBatchAcrossShardCounts) {
  const sim::Corpus corpus = sim::GenerateCorpus(SmallConfig());
  std::vector<std::string> blobs;
  blobs.reserve(corpus.pipelines.size());
  for (const sim::PipelineTrace& trace : corpus.pipelines) {
    blobs.push_back(metadata::SerializeStoreBinary(trace.store));
  }
  std::vector<ShardedProvenanceService::BinaryPipeline> pipelines;
  for (size_t i = 0; i < blobs.size(); ++i) {
    pipelines.push_back(
        {corpus.pipelines[i].config.pipeline_id, blobs[i]});
  }
  const uint64_t batch = FingerprintSegmented(core::SegmentCorpus(corpus));
  for (size_t shards : {1u, 4u}) {
    ShardRouterOptions options;
    options.shards = shards;
    ShardedProvenanceService service(options);
    auto result = service.IngestBinary(pipelines);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->FirstError().ok()) << result->FirstError();
    EXPECT_EQ(FingerprintSegmented(result->ToSegmentedCorpus()), batch)
        << "shards " << shards;
  }
}

TEST(ShardBinaryTest, CorruptBlobFailsItsSlotOnly) {
  const sim::Corpus corpus = sim::GenerateCorpus(SmallConfig());
  std::vector<std::string> blobs;
  for (const sim::PipelineTrace& trace : corpus.pipelines) {
    blobs.push_back(metadata::SerializeStoreBinary(trace.store));
  }
  blobs[3] = "MLPBgarbage";
  std::vector<ShardedProvenanceService::BinaryPipeline> pipelines;
  for (size_t i = 0; i < blobs.size(); ++i) {
    pipelines.push_back(
        {corpus.pipelines[i].config.pipeline_id, blobs[i]});
  }
  ShardRouterOptions options;
  options.shards = 4;
  ShardedProvenanceService service(options);
  auto result = service.IngestBinary(pipelines);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->pipelines[3].status.ok());
  EXPECT_TRUE(result->pipelines[3].result.graphlets.empty());
  for (size_t i = 0; i < result->pipelines.size(); ++i) {
    if (i == 3) continue;
    EXPECT_TRUE(result->pipelines[i].status.ok()) << i;
  }
}

TEST(ShardBinaryTest, DurableBinaryIngestIsRejected) {
  ShardRouterOptions options;
  options.wal_dir = "/tmp/never_created";
  ShardedProvenanceService service(options);
  auto result = service.IngestBinary({});
  EXPECT_EQ(result.status().code(), common::StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// Durable sharded ingest

TEST(ShardDurableTest, DurableShardedRunMatchesInMemoryAndLaysOutDirs) {
  const std::string dir =
      (fs::temp_directory_path() /
       ("mlprov_shard_" +
        std::to_string(
            ::testing::UnitTest::GetInstance()->random_seed())))
          .string();
  fs::remove_all(dir);
  const sim::Corpus corpus = sim::GenerateCorpus(SmallConfig());
  const uint64_t batch = FingerprintSegmented(core::SegmentCorpus(corpus));

  ShardRouterOptions options;
  options.shards = 4;
  options.wal_dir = dir;
  options.checkpoint_interval = 256;
  ShardedProvenanceService service(options);
  auto result = service.IngestCorpus(corpus);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->FirstError().ok()) << result->FirstError();
  EXPECT_EQ(FingerprintSegmented(result->ToSegmentedCorpus()), batch);

  // Per-shard durability layout: <wal_dir>/shard<k>/p<id> per pipeline,
  // under the pipeline's routed shard.
  for (const ShardPipelineResult& slot : result->pipelines) {
    const fs::path expected = fs::path(dir) /
                              ("shard" + std::to_string(slot.shard)) /
                              ("p" + std::to_string(slot.pipeline_id));
    EXPECT_TRUE(fs::exists(expected)) << expected;
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Backpressure

TEST(ShardBackpressureTest, TinyQueueBlocksLosslessly) {
  const sim::Corpus corpus = sim::GenerateCorpus(SmallConfig());
  const uint64_t batch = FingerprintSegmented(core::SegmentCorpus(corpus));
  ShardRouterOptions options;
  options.shards = 2;
  options.queue_capacity = 2;  // every deep pipeline must stall the router
  ShardedProvenanceService service(options);
  auto result = service.IngestCorpus(corpus);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(FingerprintSegmented(result->ToSegmentedCorpus()), batch);
  EXPECT_EQ(result->shed_records, 0u);
  EXPECT_GT(result->backpressure_stalls, 0u);
  EXPECT_LE(result->queue_depth_peak, 2u);
}

TEST(ShardBackpressureTest, ShedPolicyAccountsExactly) {
  const sim::Corpus corpus = sim::GenerateCorpus(SmallConfig());
  ShardRouterOptions options;
  options.shards = 2;
  options.queue_capacity = 2;
  options.backpressure = BackpressurePolicy::kShed;
  ShardedProvenanceService service(options);
  auto result = service.IngestCorpus(corpus);
  ASSERT_TRUE(result.ok()) << result.status();
  // Whether a pipeline sheds depends on scheduling — the invariants do
  // not: every fed record is either routed or counted shed, shed slots
  // are flagged pipelines, and surviving slots match the batch result.
  EXPECT_EQ(result->records + result->shed_records, TotalFeedRecords(corpus));
  size_t shed_slots = 0;
  const core::SegmentedCorpus segmented = core::SegmentCorpus(corpus);
  for (const ShardPipelineResult& slot : result->pipelines) {
    if (slot.shed) {
      ++shed_slots;
      EXPECT_TRUE(slot.result.graphlets.empty());
      continue;
    }
    EXPECT_EQ(FingerprintGraphlets(slot.result.graphlets),
              FingerprintGraphlets(segmented.pipelines[slot.slot].graphlets))
        << "surviving slot " << slot.slot;
  }
  EXPECT_EQ(shed_slots, result->shed_pipelines);
  if (result->shed_records > 0) {
    EXPECT_GT(shed_slots, 0u);
  }
}

// ---------------------------------------------------------------------
// Reentrancy and option validation

TEST(ShardServiceTest, ReentrantCallFallsBackToSequentialSchedule) {
  // From inside a ParallelFor body the pool runs loops inline — the
  // service must detect it and still produce identical results (a
  // bounded queue with no running consumer would deadlock instead).
  const sim::Corpus corpus = sim::GenerateCorpus(SmallConfig());
  const uint64_t batch = FingerprintSegmented(core::SegmentCorpus(corpus));
  ScopedThreads scoped(4);
  std::vector<uint64_t> fingerprints(2, 0);
  common::ParallelFor(2, [&](size_t i) {
    ShardRouterOptions options;
    options.shards = 4;
    ShardedProvenanceService service(options);
    auto result = service.IngestCorpus(corpus);
    ASSERT_TRUE(result.ok()) << result.status();
    fingerprints[i] = FingerprintSegmented(result->ToSegmentedCorpus());
  });
  EXPECT_EQ(fingerprints[0], batch);
  EXPECT_EQ(fingerprints[1], batch);
}

TEST(ShardServiceTest, RejectsInvalidOptions) {
  const sim::Corpus empty;
  {
    ShardRouterOptions options;
    options.shards = 0;
    auto result = ShardedProvenanceService(options).IngestCorpus(empty);
    EXPECT_EQ(result.status().code(),
              common::StatusCode::kInvalidArgument);
  }
  {
    ShardRouterOptions options;
    options.shards = 257;
    auto result = ShardedProvenanceService(options).IngestCorpus(empty);
    EXPECT_EQ(result.status().code(),
              common::StatusCode::kInvalidArgument);
  }
  {
    ShardRouterOptions options;
    options.queue_capacity = 1;
    auto result = ShardedProvenanceService(options).IngestCorpus(empty);
    EXPECT_EQ(result.status().code(),
              common::StatusCode::kInvalidArgument);
  }
}

TEST(ShardServiceTest, BackpressurePolicyParsesAndPrints) {
  EXPECT_STREQ(ToString(BackpressurePolicy::kBlock), "block");
  EXPECT_STREQ(ToString(BackpressurePolicy::kShed), "shed");
  auto block = ParseBackpressurePolicy("block");
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(*block, BackpressurePolicy::kBlock);
  auto shed = ParseBackpressurePolicy("shed");
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(*shed, BackpressurePolicy::kShed);
  EXPECT_EQ(ParseBackpressurePolicy("drop").status().code(),
            common::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mlprov::stream
