#include "stream/wal.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dataspan/feature_stats.h"
#include "metadata/types.h"
#include "simulator/provenance_sink.h"

namespace mlprov::stream {
namespace {

namespace fs = std::filesystem;
using metadata::ArtifactType;
using metadata::EventKind;
using metadata::ExecutionType;
using sim::ProvenanceRecord;

class StreamWalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("mlprov_wal_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

/// A deterministic mixed-kind feed exercising every payload shape:
/// properties of all three tags, span stats, span contexts, negative
/// timestamps, and empty strings.
std::vector<ProvenanceRecord> MakeFeed(size_t n) {
  std::vector<ProvenanceRecord> feed;
  feed.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ProvenanceRecord record;
    switch (i % 4) {
      case 0: {
        record.kind = ProvenanceRecord::Kind::kContext;
        record.context.id = static_cast<int64_t>(i / 4 + 1);
        record.context.name = "pipeline_" + std::to_string(i);
        break;
      }
      case 1: {
        record.kind = ProvenanceRecord::Kind::kExecution;
        record.execution.id = static_cast<int64_t>(i);
        record.execution.type = ExecutionType::kTrainer;
        record.execution.start_time = static_cast<int64_t>(i) * 10 - 5;
        record.execution.end_time = static_cast<int64_t>(i) * 10 + 5;
        record.execution.succeeded = (i % 8) != 1;
        record.execution.compute_cost = 0.25 * static_cast<double>(i);
        record.execution.properties["state"] = std::string("COMPLETE");
        record.execution.properties["retry"] = static_cast<int64_t>(i % 3);
        record.execution.properties["cost"] = 1.5 + static_cast<double>(i);
        record.span.trace_id = i + 1;
        record.span.span_id = i + 2;
        break;
      }
      case 2: {
        record.kind = ProvenanceRecord::Kind::kArtifact;
        record.artifact.id = static_cast<int64_t>(i);
        record.artifact.type = ArtifactType::kExamples;
        record.artifact.create_time = static_cast<int64_t>(i) * 7;
        record.artifact.properties["uri"] =
            std::string("spans/") + std::to_string(i);
        break;
      }
      default: {
        record.kind = ProvenanceRecord::Kind::kEvent;
        record.event.execution = static_cast<int64_t>(i - 3);
        record.event.artifact = static_cast<int64_t>(i - 2);
        record.event.kind = (i % 8) < 4 ? EventKind::kInput
                                        : EventKind::kOutput;
        record.event.time = static_cast<int64_t>(i) * 3;
        break;
      }
    }
    feed.push_back(std::move(record));
  }
  return feed;
}

/// Span stats attached to artifact records of the feed (side storage so
/// the borrowed pointer stays valid for the writer call).
dataspan::SpanStats MakeStats(size_t i) {
  dataspan::SpanStats stats;
  stats.span_number = static_cast<int64_t>(i);
  dataspan::FeatureStats f;
  f.name = "feature_" + std::to_string(i % 3);
  f.kind = (i % 2) == 0 ? dataspan::FeatureKind::kNumerical
                        : dataspan::FeatureKind::kCategorical;
  f.bins[i % f.bins.size()] = 0.5 * static_cast<double>(i) + 1.0;
  f.top_term_counts[i % f.top_term_counts.size()] =
      static_cast<double>(i) + 2.0;
  f.unique_terms = static_cast<int64_t>(i % 17);
  f.total_count = static_cast<int64_t>(100 + i);
  stats.features.push_back(std::move(f));
  return stats;
}

bool RecordsEqual(const ProvenanceRecord& a, const ProvenanceRecord& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ProvenanceRecord::Kind::kContext:
      return a.context.id == b.context.id && a.context.name == b.context.name;
    case ProvenanceRecord::Kind::kExecution:
      return a.execution.id == b.execution.id &&
             a.execution.type == b.execution.type &&
             a.execution.start_time == b.execution.start_time &&
             a.execution.end_time == b.execution.end_time &&
             a.execution.succeeded == b.execution.succeeded &&
             a.execution.compute_cost == b.execution.compute_cost &&
             a.execution.properties == b.execution.properties &&
             a.span.trace_id == b.span.trace_id &&
             a.span.span_id == b.span.span_id;
    case ProvenanceRecord::Kind::kArtifact:
      return a.artifact.id == b.artifact.id &&
             a.artifact.type == b.artifact.type &&
             a.artifact.create_time == b.artifact.create_time &&
             a.artifact.properties == b.artifact.properties;
    case ProvenanceRecord::Kind::kEvent:
      return a.event.execution == b.event.execution &&
             a.event.artifact == b.event.artifact &&
             a.event.kind == b.event.kind && a.event.time == b.event.time;
  }
  return false;
}

/// Writes the feed (span stats on every artifact record) and returns it.
std::vector<ProvenanceRecord> WriteFeed(WalWriter& wal, size_t n,
                                        std::vector<dataspan::SpanStats>&
                                            stats_storage) {
  std::vector<ProvenanceRecord> feed = MakeFeed(n);
  stats_storage.clear();
  stats_storage.reserve(n);  // stable addresses
  for (size_t i = 0; i < feed.size(); ++i) {
    if (feed[i].kind == ProvenanceRecord::Kind::kArtifact) {
      stats_storage.push_back(MakeStats(i));
      feed[i].span_stats = &stats_storage.back();
    }
    EXPECT_TRUE(wal.Append(feed[i]).ok());
  }
  return feed;
}

TEST_F(StreamWalTest, SyncPolicyParsesAndPrints) {
  EXPECT_STREQ(ToString(WalSyncPolicy::kNone), "none");
  EXPECT_STREQ(ToString(WalSyncPolicy::kInterval), "interval");
  EXPECT_STREQ(ToString(WalSyncPolicy::kEvery), "every");
  for (WalSyncPolicy policy : {WalSyncPolicy::kNone, WalSyncPolicy::kInterval,
                               WalSyncPolicy::kEvery}) {
    auto parsed = ParseWalSyncPolicy(ToString(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(ParseWalSyncPolicy("fsync-maybe").ok());
}

TEST_F(StreamWalTest, RoundTripsEveryRecordShape) {
  WalOptions options;
  options.dir = dir_;
  options.sync = WalSyncPolicy::kEvery;
  auto wal = WalWriter::Open(options);
  ASSERT_TRUE(wal.ok()) << wal.status();
  std::vector<dataspan::SpanStats> stats;
  const std::vector<ProvenanceRecord> feed = WriteFeed(*wal, 64, stats);
  ASSERT_TRUE(wal->Close().ok());

  auto recovered = ReadWal(dir_);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->first_seq, 0u);
  EXPECT_EQ(recovered->next_seq, feed.size());
  EXPECT_EQ(recovered->quarantined_records, 0u);
  EXPECT_EQ(recovered->torn_tail_bytes, 0u);
  ASSERT_EQ(recovered->entries.size(), feed.size());
  for (size_t i = 0; i < feed.size(); ++i) {
    WalEntry& entry = recovered->entries[i];
    EXPECT_EQ(entry.seq, i);
    EXPECT_TRUE(RecordsEqual(entry.View(), feed[i])) << "record " << i;
    if (feed[i].span_stats != nullptr) {
      ASSERT_TRUE(entry.span_stats.has_value()) << "record " << i;
      EXPECT_EQ(entry.span_stats->span_number, feed[i].span_stats->span_number);
      ASSERT_EQ(entry.span_stats->features.size(),
                feed[i].span_stats->features.size());
      EXPECT_EQ(entry.span_stats->features[0].name,
                feed[i].span_stats->features[0].name);
      EXPECT_EQ(entry.span_stats->features[0].bins,
                feed[i].span_stats->features[0].bins);
      EXPECT_EQ(entry.span_stats->features[0].top_term_counts,
                feed[i].span_stats->features[0].top_term_counts);
      EXPECT_EQ(entry.span_stats->features[0].unique_terms,
                feed[i].span_stats->features[0].unique_terms);
    } else {
      EXPECT_FALSE(entry.span_stats.has_value());
    }
  }
}

TEST_F(StreamWalTest, RotatesSegmentsAndReadsAcrossThem) {
  WalOptions options;
  options.dir = dir_;
  options.segment_max_bytes = 256;  // force many rotations
  options.flush_threshold_bytes = 32;
  auto wal = WalWriter::Open(options);
  ASSERT_TRUE(wal.ok()) << wal.status();
  std::vector<dataspan::SpanStats> stats;
  const auto feed = WriteFeed(*wal, 200, stats);
  ASSERT_TRUE(wal->Close().ok());

  auto recovered = ReadWal(dir_);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_GT(recovered->segments, 3u);
  ASSERT_EQ(recovered->entries.size(), feed.size());
  EXPECT_EQ(recovered->quarantined_records, 0u);
  for (size_t i = 0; i < feed.size(); ++i) {
    EXPECT_EQ(recovered->entries[i].seq, i);
    EXPECT_TRUE(RecordsEqual(recovered->entries[i].View(), feed[i]));
  }
}

TEST_F(StreamWalTest, FromSeqSkipsCheckpointedPrefix) {
  WalOptions options;
  options.dir = dir_;
  auto wal = WalWriter::Open(options);
  ASSERT_TRUE(wal.ok());
  std::vector<dataspan::SpanStats> stats;
  WriteFeed(*wal, 40, stats);
  ASSERT_TRUE(wal->Close().ok());

  WalReadOptions read;
  read.from_seq = 25;
  auto recovered = ReadWal(dir_, read);
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->entries.size(), 15u);
  EXPECT_EQ(recovered->entries.front().seq, 25u);
  EXPECT_EQ(recovered->first_seq, 0u);  // log still starts at 0
  EXPECT_EQ(recovered->next_seq, 40u);
}

TEST_F(StreamWalTest, EmptyOrMissingDirIsAFreshLog) {
  auto missing = ReadWal(dir_ + "/never_created");
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->entries.empty());
  EXPECT_EQ(missing->segments, 0u);

  fs::create_directories(dir_);
  auto empty = ReadWal(dir_);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->entries.empty());
}

TEST_F(StreamWalTest, SimulateCrashDropsOnlyUnsyncedBytes) {
  WalOptions options;
  options.dir = dir_;
  options.sync = WalSyncPolicy::kInterval;
  options.sync_interval_records = 10;
  auto wal = WalWriter::Open(options);
  ASSERT_TRUE(wal.ok());
  std::vector<dataspan::SpanStats> stats;
  const auto feed = WriteFeed(*wal, 25, stats);
  // Synced through record 20 (two interval syncs); 5 records at risk.
  ASSERT_TRUE(wal->SimulateCrash(0).ok());

  auto recovered = ReadWal(dir_);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->entries.size(), 20u);
  EXPECT_EQ(recovered->quarantined_records, 0u);
  EXPECT_EQ(recovered->torn_tail_bytes, 0u);
  for (size_t i = 0; i < recovered->entries.size(); ++i) {
    EXPECT_TRUE(RecordsEqual(recovered->entries[i].View(), feed[i]));
  }
}

TEST_F(StreamWalTest, TornTailIsTruncatedAndAccounted) {
  WalOptions options;
  options.dir = dir_;
  options.sync = WalSyncPolicy::kInterval;
  options.sync_interval_records = 10;
  auto wal = WalWriter::Open(options);
  ASSERT_TRUE(wal.ok());
  std::vector<dataspan::SpanStats> stats;
  WriteFeed(*wal, 25, stats);
  const uint64_t unsynced = wal->appended_bytes() - wal->synced_bytes();
  ASSERT_GT(unsynced, 8u);
  // Keep part of the unsynced tail: whole frames replay, the final
  // partial frame is a torn tail.
  ASSERT_TRUE(wal->SimulateCrash(unsynced - 3).ok());

  auto recovered = ReadWal(dir_);
  ASSERT_TRUE(recovered.ok());
  EXPECT_GE(recovered->entries.size(), 20u);
  EXPECT_LT(recovered->entries.size(), 25u);
  EXPECT_EQ(recovered->quarantined_records, 0u);
  EXPECT_GT(recovered->torn_tail_bytes, 0u);
}

// Satellite: the lenient-salvage property, WAL side. For *every*
// truncation point of a one-segment log, salvage must (a) never fail,
// (b) recover exactly the whole frames that fit the kept prefix — i.e.
// equal strict deserialization of the intact prefix — and (c) report
// the remainder as torn tail, never as mid-log corruption.
TEST_F(StreamWalTest, EveryTruncatedPrefixSalvagesToTheIntactPrefix) {
  WalOptions options;
  options.dir = dir_;
  auto wal = WalWriter::Open(options);
  ASSERT_TRUE(wal.ok());
  std::vector<dataspan::SpanStats> stats;
  const auto feed = WriteFeed(*wal, 24, stats);
  ASSERT_TRUE(wal->Close().ok());

  std::string segment;
  for (const auto& file : fs::directory_iterator(dir_)) {
    segment = file.path().string();
  }
  ASSERT_FALSE(segment.empty());
  std::ifstream in(segment, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_FALSE(bytes.empty());

  // Frame boundaries via the strict codec: prefix_entries[len] = how
  // many whole frames an `len`-byte file contains.
  const size_t header_size = [&] {
    walwire::Cursor cursor(bytes);
    cursor.p += 5;  // magic + version
    uint64_t start_seq = 0;
    EXPECT_TRUE(walwire::ReadVarint(cursor, &start_seq));
    return bytes.size() - cursor.remaining();
  }();
  std::vector<size_t> frame_end;  // cumulative end offset of frame i
  {
    walwire::Cursor cursor(bytes);
    cursor.p += header_size;
    WalEntry entry;
    while (walwire::DecodeFrame(cursor, &entry)) {
      frame_end.push_back(bytes.size() - cursor.remaining());
    }
    ASSERT_EQ(frame_end.size(), feed.size());
    ASSERT_EQ(cursor.remaining(), 0u);
  }

  const std::string truncated_dir = dir_ + "_trunc";
  for (size_t len = 0; len <= bytes.size(); ++len) {
    fs::remove_all(truncated_dir);
    fs::create_directories(truncated_dir);
    {
      std::ofstream out(
          truncated_dir + "/" + fs::path(segment).filename().string(),
          std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(len));
    }
    auto recovered = ReadWal(truncated_dir);
    ASSERT_TRUE(recovered.ok()) << "len " << len;
    size_t expect_frames = 0;
    while (expect_frames < frame_end.size() &&
           frame_end[expect_frames] <= len) {
      ++expect_frames;
    }
    if (len < header_size) {
      // Header itself torn: nothing replayable, whole file is tail.
      EXPECT_TRUE(recovered->entries.empty()) << "len " << len;
    } else {
      ASSERT_EQ(recovered->entries.size(), expect_frames) << "len " << len;
      for (size_t i = 0; i < expect_frames; ++i) {
        EXPECT_TRUE(RecordsEqual(recovered->entries[i].View(), feed[i]));
      }
      const size_t whole = expect_frames == 0 ? header_size
                                              : frame_end[expect_frames - 1];
      EXPECT_EQ(recovered->torn_tail_bytes, len - whole) << "len " << len;
    }
    EXPECT_EQ(recovered->quarantined_records, 0u) << "len " << len;
  }
  fs::remove_all(truncated_dir);
}

TEST_F(StreamWalTest, MidLogCorruptionQuarantinesExactly) {
  WalOptions options;
  options.dir = dir_;
  auto wal = WalWriter::Open(options);
  ASSERT_TRUE(wal.ok());
  std::vector<dataspan::SpanStats> stats;
  const auto feed = WriteFeed(*wal, 32, stats);
  ASSERT_TRUE(wal->Close().ok());

  std::string segment;
  for (const auto& file : fs::directory_iterator(dir_)) {
    segment = file.path().string();
  }
  std::ifstream in(segment, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // Flip one byte around the middle of the file (inside some frame).
  const size_t victim = bytes.size() / 2;
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x5a);
  {
    std::ofstream out(segment, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  auto recovered = ReadWal(dir_);
  ASSERT_TRUE(recovered.ok());
  // Mid-log defect with intact later frames: the gap is exact.
  EXPECT_LT(recovered->entries.size(), feed.size());
  EXPECT_GT(recovered->quarantined_records, 0u);
  EXPECT_EQ(recovered->entries.size() + recovered->quarantined_records,
            feed.size());
  EXPECT_GT(recovered->quarantined_bytes, 0u);
  EXPECT_EQ(recovered->torn_tail_bytes, 0u);
  for (size_t i = 0; i < recovered->entries.size(); ++i) {
    EXPECT_TRUE(RecordsEqual(recovered->entries[i].View(), feed[i]));
  }
}

TEST_F(StreamWalTest, RepairTruncatesAndPreservesTheRemovedBytes) {
  WalOptions options;
  options.dir = dir_;
  auto wal = WalWriter::Open(options);
  ASSERT_TRUE(wal.ok());
  std::vector<dataspan::SpanStats> stats;
  WriteFeed(*wal, 32, stats);
  ASSERT_TRUE(wal->Close().ok());

  std::string segment;
  for (const auto& file : fs::directory_iterator(dir_)) {
    segment = file.path().string();
  }
  {
    std::fstream out(segment,
                     std::ios::binary | std::ios::in | std::ios::out);
    out.seekp(static_cast<std::streamoff>(fs::file_size(segment) / 2));
    out.put('\x00');
    out.put('\x00');
  }

  WalReadOptions read;
  read.repair = true;
  auto repaired = ReadWal(dir_, read);
  ASSERT_TRUE(repaired.ok());
  EXPECT_FALSE(repaired->repairs.empty());
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "quarantine"));

  // A second, read-only scan sees a clean (if shorter) log.
  auto rescanned = ReadWal(dir_);
  ASSERT_TRUE(rescanned.ok());
  EXPECT_EQ(rescanned->quarantined_records, 0u);
  EXPECT_EQ(rescanned->torn_tail_bytes, 0u);
  EXPECT_EQ(rescanned->entries.size(), repaired->entries.size());
}

TEST_F(StreamWalTest, PruneDropsOnlyFullyCoveredSegments) {
  WalOptions options;
  options.dir = dir_;
  options.segment_max_bytes = 256;
  auto wal = WalWriter::Open(options);
  ASSERT_TRUE(wal.ok());
  std::vector<dataspan::SpanStats> stats;
  const auto feed = WriteFeed(*wal, 120, stats);
  ASSERT_TRUE(wal->Close().ok());

  auto before = ReadWal(dir_);
  ASSERT_TRUE(before.ok());
  ASSERT_GT(before->segments, 2u);

  auto pruned = PruneWalSegments(dir_, 60);
  ASSERT_TRUE(pruned.ok());
  EXPECT_GT(*pruned, 0u);

  auto after = ReadWal(dir_);
  ASSERT_TRUE(after.ok());
  // Everything from seq 60 must still replay (the checkpoint bound).
  ASSERT_FALSE(after->entries.empty());
  EXPECT_LE(after->entries.front().seq, 60u);
  EXPECT_EQ(after->next_seq, feed.size());
  uint64_t seq = after->entries.front().seq;
  for (WalEntry& entry : after->entries) {
    EXPECT_EQ(entry.seq, seq++);
    EXPECT_TRUE(RecordsEqual(entry.View(), feed[entry.seq]));
  }

  // Pruning everything never deletes the active (last) segment.
  auto all = PruneWalSegments(dir_, 10'000);
  ASSERT_TRUE(all.ok());
  auto still = ReadWal(dir_);
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(still->segments, 1u);
}

TEST_F(StreamWalTest, QuarantineWalDirMovesEverything) {
  WalOptions options;
  options.dir = dir_;
  options.segment_max_bytes = 512;
  auto wal = WalWriter::Open(options);
  ASSERT_TRUE(wal.ok());
  std::vector<dataspan::SpanStats> stats;
  WriteFeed(*wal, 60, stats);
  ASSERT_TRUE(wal->Close().ok());

  auto moved = QuarantineWalDir(dir_);
  ASSERT_TRUE(moved.ok());
  EXPECT_GT(*moved, 0u);

  auto recovered = ReadWal(dir_);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->entries.empty());
  EXPECT_EQ(recovered->segments, 0u);
  // The evidence survives under quarantine/.
  size_t preserved = 0;
  for (const auto& file :
       fs::directory_iterator(fs::path(dir_) / "quarantine")) {
    (void)file;
    ++preserved;
  }
  EXPECT_EQ(preserved, *moved);
}

TEST_F(StreamWalTest, ReopenContinuesInAFreshSegment) {
  WalOptions options;
  options.dir = dir_;
  auto wal = WalWriter::Open(options);
  ASSERT_TRUE(wal.ok());
  std::vector<dataspan::SpanStats> stats;
  const auto first = WriteFeed(*wal, 20, stats);
  ASSERT_TRUE(wal->Close().ok());

  auto reopened = WalWriter::Open(options, 20);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->next_seq(), 20u);
  std::vector<dataspan::SpanStats> more_stats;
  std::vector<ProvenanceRecord> second = MakeFeed(10);
  for (auto& record : second) {
    ASSERT_TRUE(reopened->Append(record).ok());
  }
  ASSERT_TRUE(reopened->Close().ok());

  auto recovered = ReadWal(dir_);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->segments, 2u);
  ASSERT_EQ(recovered->entries.size(), 30u);
  for (size_t i = 0; i < 30; ++i) EXPECT_EQ(recovered->entries[i].seq, i);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(RecordsEqual(recovered->entries[i].View(), first[i]));
  }
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(RecordsEqual(recovered->entries[20 + i].View(), second[i]));
  }
}

}  // namespace
}  // namespace mlprov::stream
