#include "metadata/metadata_store.h"

#include <gtest/gtest.h>

#include "metadata/types.h"

namespace mlprov::metadata {
namespace {

TEST(MetadataStoreTest, PutAssignsSequentialIds) {
  MetadataStore store;
  EXPECT_EQ(store.PutArtifact({}), 1);
  EXPECT_EQ(store.PutArtifact({}), 2);
  EXPECT_EQ(store.PutExecution({}), 1);
  EXPECT_EQ(store.PutExecution({}), 2);
  EXPECT_EQ(store.num_artifacts(), 2u);
  EXPECT_EQ(store.num_executions(), 2u);
}

TEST(MetadataStoreTest, GetUnknownIdFails) {
  MetadataStore store;
  EXPECT_FALSE(store.GetArtifact(1).ok());
  EXPECT_FALSE(store.GetExecution(0).ok());
  EXPECT_FALSE(store.GetContext(-3).ok());
}

TEST(MetadataStoreTest, EventIndexing) {
  MetadataStore store;
  Artifact span;
  span.type = ArtifactType::kExamples;
  const ArtifactId a = store.PutArtifact(span);
  Execution trainer;
  trainer.type = ExecutionType::kTrainer;
  const ExecutionId e = store.PutExecution(trainer);
  Artifact model;
  model.type = ArtifactType::kModel;
  const ArtifactId m = store.PutArtifact(model);

  ASSERT_TRUE(store.PutEvent({e, a, EventKind::kInput, 10}).ok());
  ASSERT_TRUE(store.PutEvent({e, m, EventKind::kOutput, 20}).ok());

  EXPECT_EQ(store.InputsOf(e), std::vector<ArtifactId>{a});
  EXPECT_EQ(store.OutputsOf(e), std::vector<ArtifactId>{m});
  EXPECT_EQ(store.ProducersOf(m), std::vector<ExecutionId>{e});
  EXPECT_EQ(store.ConsumersOf(a), std::vector<ExecutionId>{e});
  EXPECT_TRUE(store.ProducersOf(a).empty());
  EXPECT_TRUE(store.ConsumersOf(m).empty());
}

TEST(MetadataStoreTest, EventWithUnknownEndpointFails) {
  MetadataStore store;
  const ArtifactId a = store.PutArtifact({});
  EXPECT_FALSE(store.PutEvent({5, a, EventKind::kInput, 0}).ok());
  const ExecutionId e = store.PutExecution({});
  EXPECT_FALSE(store.PutEvent({e, 99, EventKind::kOutput, 0}).ok());
  EXPECT_EQ(store.num_events(), 0u);
}

TEST(MetadataStoreTest, ContextMembership) {
  MetadataStore store;
  Context ctx;
  ctx.name = "pipeline-0";
  const ContextId c = store.PutContext(ctx);
  const ExecutionId e = store.PutExecution({});
  const ArtifactId a = store.PutArtifact({});
  ASSERT_TRUE(store.AddToContext(c, e).ok());
  ASSERT_TRUE(store.AddArtifactToContext(c, a).ok());
  auto got = store.GetContext(c);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->name, "pipeline-0");
  EXPECT_EQ(got->executions, std::vector<ExecutionId>{e});
  EXPECT_EQ(got->artifacts, std::vector<ArtifactId>{a});
  EXPECT_FALSE(store.AddToContext(99, e).ok());
  EXPECT_FALSE(store.AddToContext(c, 99).ok());
}

TEST(MetadataStoreTest, PropertiesRoundTrip) {
  MetadataStore store;
  Execution e;
  e.properties["code_version"] = static_cast<int64_t>(3);
  e.properties["loss"] = 0.25;
  e.properties["owner"] = std::string("team-a");
  const ExecutionId id = store.PutExecution(e);
  auto got = store.GetExecution(id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::get<int64_t>(got->properties.at("code_version")), 3);
  EXPECT_DOUBLE_EQ(std::get<double>(got->properties.at("loss")), 0.25);
  EXPECT_EQ(std::get<std::string>(got->properties.at("owner")), "team-a");
}

TEST(MetadataStoreTest, TypeQueries) {
  MetadataStore store;
  Execution t;
  t.type = ExecutionType::kTrainer;
  Execution p;
  p.type = ExecutionType::kPusher;
  store.PutExecution(t);
  store.PutExecution(p);
  store.PutExecution(t);
  EXPECT_EQ(store.ExecutionsOfType(ExecutionType::kTrainer).size(), 2u);
  EXPECT_EQ(store.ExecutionsOfType(ExecutionType::kPusher).size(), 1u);
  EXPECT_TRUE(store.ExecutionsOfType(ExecutionType::kTuner).empty());

  Artifact m;
  m.type = ArtifactType::kModel;
  store.PutArtifact(m);
  EXPECT_EQ(store.ArtifactsOfType(ArtifactType::kModel).size(), 1u);
  EXPECT_TRUE(store.ArtifactsOfType(ArtifactType::kSchema).empty());
}

TEST(MetadataStoreTest, MutableAccessors) {
  MetadataStore store;
  const ExecutionId e = store.PutExecution({});
  Execution* me = store.MutableExecution(e);
  ASSERT_NE(me, nullptr);
  me->compute_cost = 12.5;
  EXPECT_DOUBLE_EQ(store.GetExecution(e)->compute_cost, 12.5);
  EXPECT_EQ(store.MutableExecution(99), nullptr);
  EXPECT_EQ(store.MutableArtifact(1), nullptr);
}

TEST(TypesTest, OperatorGrouping) {
  EXPECT_EQ(GroupOf(ExecutionType::kExampleGen),
            OperatorGroup::kDataIngestion);
  EXPECT_EQ(GroupOf(ExecutionType::kStatisticsGen),
            OperatorGroup::kDataAnalysisValidation);
  EXPECT_EQ(GroupOf(ExecutionType::kExampleValidator),
            OperatorGroup::kDataAnalysisValidation);
  EXPECT_EQ(GroupOf(ExecutionType::kTransform),
            OperatorGroup::kDataPreprocessing);
  EXPECT_EQ(GroupOf(ExecutionType::kTrainer), OperatorGroup::kTraining);
  EXPECT_EQ(GroupOf(ExecutionType::kTuner), OperatorGroup::kTraining);
  EXPECT_EQ(GroupOf(ExecutionType::kEvaluator),
            OperatorGroup::kModelAnalysisValidation);
  EXPECT_EQ(GroupOf(ExecutionType::kPusher),
            OperatorGroup::kModelDeployment);
  EXPECT_EQ(GroupOf(ExecutionType::kCustom), OperatorGroup::kCustom);
}

TEST(TypesTest, ToStringCoversAllEnumerators) {
  for (int i = 0; i < kNumExecutionTypes; ++i) {
    EXPECT_STRNE(ToString(static_cast<ExecutionType>(i)),
                 "UnknownExecution");
  }
  for (int i = 0; i < kNumArtifactTypes; ++i) {
    EXPECT_STRNE(ToString(static_cast<ArtifactType>(i)), "UnknownArtifact");
  }
  for (int i = 0; i < kNumModelTypes; ++i) {
    EXPECT_STRNE(ToString(static_cast<ModelType>(i)), "UnknownModel");
  }
  for (int i = 0; i < kNumAnalyzerTypes; ++i) {
    EXPECT_STRNE(ToString(static_cast<AnalyzerType>(i)), "unknown");
  }
  for (int i = 0; i < kNumOperatorGroups; ++i) {
    EXPECT_STRNE(ToString(static_cast<OperatorGroup>(i)), "UnknownGroup");
  }
}

}  // namespace
}  // namespace mlprov::metadata
