#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mlprov::common {
namespace {

Flags MakeFlags(std::vector<const char*> args) {
  args.insert(args.begin(), "binary");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

/// Restores the global thread knob on scope exit so tests don't leak
/// their settings into each other.
struct ThreadGuard {
  ThreadGuard() : saved(GlobalThreads()) {}
  ~ThreadGuard() { SetGlobalThreads(saved); }
  int saved;
};

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  ThreadGuard guard;
  SetGlobalThreads(4);
  const size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  ParallelFor(n, [&](size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, VisitsEveryIndexWithGrainOne) {
  ThreadGuard guard;
  SetGlobalThreads(4);
  const size_t n = 257;  // not a multiple of anything convenient
  std::vector<std::atomic<int>> visits(n);
  ParallelFor(
      n,
      [&](size_t i) { visits[i].fetch_add(1, std::memory_order_relaxed); },
      /*grain=*/1);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, VisitsEveryIndexWithOversizedGrain) {
  ThreadGuard guard;
  SetGlobalThreads(4);
  const size_t n = 100;
  std::atomic<int> total{0};
  ParallelFor(
      n, [&](size_t) { total.fetch_add(1, std::memory_order_relaxed); },
      /*grain=*/1000);
  EXPECT_EQ(total.load(), 100);
}

TEST(ParallelForTest, ZeroAndSingleElement) {
  ThreadGuard guard;
  SetGlobalThreads(4);
  int calls = 0;
  ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(1, [&](size_t i) {
    ++calls;
    EXPECT_EQ(i, 0u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, SingleThreadRunsInOrderOnCaller) {
  ThreadGuard guard;
  SetGlobalThreads(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<size_t> order;
  ParallelFor(100, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  std::vector<size_t> expected(100);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, NestedLoopsRunInlineWithoutDeadlock) {
  ThreadGuard guard;
  SetGlobalThreads(4);
  const size_t outer = 16, inner = 64;
  std::atomic<int> total{0};
  ParallelFor(
      outer,
      [&](size_t) {
        ParallelFor(inner, [&](size_t) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
      },
      /*grain=*/1);
  EXPECT_EQ(total.load(), static_cast<int>(outer * inner));
}

TEST(ParallelForTest, PropagatesException) {
  ThreadGuard guard;
  SetGlobalThreads(4);
  EXPECT_THROW(
      ParallelFor(1000,
                  [&](size_t i) {
                    if (i == 333) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, PoolIsReusableAfterException) {
  ThreadGuard guard;
  SetGlobalThreads(4);
  try {
    ParallelFor(100, [](size_t) { throw std::runtime_error("boom"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> total{0};
  ParallelFor(100, [&](size_t) {
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 100);
}

TEST(ParallelMapTest, PreservesIndexOrder) {
  ThreadGuard guard;
  SetGlobalThreads(4);
  const std::vector<int> out =
      ParallelMap<int>(1000, [](size_t i) { return static_cast<int>(i) * 3; });
  ASSERT_EQ(out.size(), 1000u);
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i) * 3);
  }
}

TEST(ThreadPoolTest, DirectUseAndReuseAcrossLoops) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> total{0};
    pool.ParallelFor(500, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(total.load(), 500);
  }
}

TEST(ThreadPoolTest, SingleThreadPoolSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<size_t> order;
  pool.ParallelFor(10, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order.size(), 10u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(GlobalThreadsTest, DefaultsToHardwareConcurrency) {
  ThreadGuard guard;
  EXPECT_GE(HardwareThreads(), 1);
}

TEST(GlobalThreadsTest, SetClampsToAtLeastOne) {
  ThreadGuard guard;
  SetGlobalThreads(0);
  EXPECT_EQ(GlobalThreads(), 1);
  SetGlobalThreads(-7);
  EXPECT_EQ(GlobalThreads(), 1);
  SetGlobalThreads(8);
  EXPECT_EQ(GlobalThreads(), 8);
}

TEST(ThreadsFromFlagsTest, AbsentDefaultsToHardware) {
  const Flags flags = MakeFlags({});
  const StatusOr<int> threads = ThreadsFromFlags(flags);
  ASSERT_TRUE(threads.ok());
  EXPECT_EQ(*threads, HardwareThreads());
}

TEST(ThreadsFromFlagsTest, AcceptsValidValue) {
  const Flags flags = MakeFlags({"--threads=6"});
  const StatusOr<int> threads = ThreadsFromFlags(flags);
  ASSERT_TRUE(threads.ok());
  EXPECT_EQ(*threads, 6);
}

TEST(ThreadsFromFlagsTest, RejectsZero) {
  const Flags flags = MakeFlags({"--threads=0"});
  const StatusOr<int> threads = ThreadsFromFlags(flags);
  ASSERT_FALSE(threads.ok());
  EXPECT_EQ(threads.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(threads.status().message().find("threads"), std::string::npos);
}

TEST(ThreadsFromFlagsTest, RejectsNegative) {
  const Flags flags = MakeFlags({"--threads=-2"});
  EXPECT_FALSE(ThreadsFromFlags(flags).ok());
}

TEST(ThreadsFromFlagsTest, RejectsNonNumeric) {
  const Flags flags = MakeFlags({"--threads=lots"});
  const StatusOr<int> threads = ThreadsFromFlags(flags);
  ASSERT_FALSE(threads.ok());
  EXPECT_NE(threads.status().message().find("lots"), std::string::npos);
}

TEST(ThreadsFromFlagsTest, RejectsTrailingJunk) {
  const Flags flags = MakeFlags({"--threads=4x"});
  EXPECT_FALSE(ThreadsFromFlags(flags).ok());
}

TEST(ThreadsFromFlagsTest, RejectsAbsurdlyLarge) {
  const Flags flags = MakeFlags({"--threads=100000"});
  EXPECT_FALSE(ThreadsFromFlags(flags).ok());
}

TEST(ThreadsFromFlagsTest, CustomFlagName) {
  const Flags flags = MakeFlags({"--workers=3"});
  const StatusOr<int> threads = ThreadsFromFlags(flags, "workers");
  ASSERT_TRUE(threads.ok());
  EXPECT_EQ(*threads, 3);
}

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(1000).capacity(), 1024u);
}

TEST(SpscQueueTest, FifoOrderAndFullEmptySemantics) {
  SpscQueue<int> queue(4);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(queue.TryPush(v)) << i;
  }
  int overflow = 99;
  EXPECT_FALSE(queue.TryPush(overflow));  // full
  EXPECT_EQ(queue.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    int out = -1;
    ASSERT_TRUE(queue.TryPop(out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(queue.TryPop(out));  // empty
}

TEST(SpscQueueTest, CloseStopsPushesButDrainsBufferedItems) {
  SpscQueue<int> queue(4);
  int v = 7;
  ASSERT_TRUE(queue.TryPush(v));
  queue.Close();
  int rejected = 8;
  EXPECT_FALSE(queue.TryPush(rejected));
  EXPECT_TRUE(queue.closed());
  int out = 0;
  ASSERT_TRUE(queue.TryPop(out));  // buffered item survives the close
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(queue.TryPop(out));
}

TEST(SpscQueueTest, TransfersEveryItemAcrossThreads) {
  // One producer, one consumer, a ring much smaller than the stream:
  // every value must arrive exactly once and in order.
  constexpr int kItems = 100000;
  SpscQueue<int> queue(64);
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      int v = i;
      while (!queue.TryPush(v)) std::this_thread::yield();
    }
    queue.Close();
  });
  int expected = 0;
  for (;;) {
    int out = -1;
    if (queue.TryPop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
      continue;
    }
    if (queue.closed()) {
      while (queue.TryPop(out)) {
        ASSERT_EQ(out, expected);
        ++expected;
      }
      break;
    }
    std::this_thread::yield();
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

}  // namespace
}  // namespace mlprov::common
