#include "similarity/span_similarity.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataspan/span_stats.h"
#include "similarity/s2jsd_lsh.h"

namespace mlprov::similarity {
namespace {

using dataspan::FeatureKind;
using dataspan::FeatureStats;
using dataspan::SpanStats;

TEST(JaccardTest, Basics) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {1}), 0.0);
}

TEST(JaccardTest, DeduplicatesInputs) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 1, 2, 2}, {2, 2, 3}), 1.0 / 3.0);
}

TEST(S2JsdTest, MetricProperties) {
  const std::vector<double> p = {0.5, 0.5, 0.0};
  const std::vector<double> q = {0.0, 0.5, 0.5};
  EXPECT_NEAR(S2JsdLsh::S2Jsd(p, p), 0.0, 1e-9);
  EXPECT_GT(S2JsdLsh::S2Jsd(p, q), 0.0);
  EXPECT_NEAR(S2JsdLsh::S2Jsd(p, q), S2JsdLsh::S2Jsd(q, p), 1e-12);
  // Max value for disjoint supports: sqrt(2 * 1 bit) = sqrt(2).
  const std::vector<double> a = {1.0, 0.0};
  const std::vector<double> b = {0.0, 1.0};
  EXPECT_NEAR(S2JsdLsh::S2Jsd(a, b), std::sqrt(2.0), 1e-9);
}

TEST(S2JsdLshTest, IdenticalDistributionsCollide) {
  S2JsdLsh lsh(S2JsdLsh::Options{});
  const std::vector<double> p = {0.1, 0.2, 0.3, 0.4, 0, 0, 0, 0, 0, 0};
  EXPECT_EQ(lsh.Hash(p), lsh.Hash(p));
  // Scaling does not matter (normalized internally).
  std::vector<double> p2 = p;
  for (double& x : p2) x *= 7.0;
  EXPECT_EQ(lsh.Hash(p), lsh.Hash(p2));
}

TEST(S2JsdLshTest, IsLocalitySensitive) {
  // Near distributions should collide much more often than far ones,
  // measured over many random instances.
  S2JsdLsh lsh(S2JsdLsh::Options{});
  common::Rng rng(99);
  int near_collisions = 0, far_collisions = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> base(10);
    for (double& x : base) x = rng.Uniform(0.1, 1.0);
    std::vector<double> near = base;
    for (double& x : near) x *= rng.Uniform(0.97, 1.03);
    std::vector<double> far(10);
    for (double& x : far) x = rng.Uniform(0.0, 1.0);
    if (lsh.Hash(base) == lsh.Hash(near)) ++near_collisions;
    if (lsh.Hash(base) == lsh.Hash(far)) ++far_collisions;
  }
  EXPECT_GT(near_collisions, far_collisions + trials / 10);
}

TEST(S2JsdLshTest, DeterministicAcrossInstancesWithSameSeed) {
  S2JsdLsh a(S2JsdLsh::Options{});
  S2JsdLsh b(S2JsdLsh::Options{});
  const std::vector<double> p = {0.3, 0.3, 0.4};
  EXPECT_EQ(a.Hash(p), b.Hash(p));
}

FeatureStats NumericalFeature(const std::string& name, double peak_bin) {
  FeatureStats f;
  f.name = name;
  f.kind = FeatureKind::kNumerical;
  for (int i = 0; i < dataspan::kNumericBins; ++i) {
    f.bins[static_cast<size_t>(i)] =
        (i == static_cast<int>(peak_bin)) ? 100.0 : 1.0;
  }
  return f;
}

SpanStats MakeSpan(int num_features, double peak_bin) {
  SpanStats s;
  for (int i = 0; i < num_features; ++i) {
    s.features.push_back(NumericalFeature("f" + std::to_string(i),
                                          peak_bin));
  }
  return s;
}

TEST(SpanSimilarityTest, IdenticalSpanIsOne) {
  SpanSimilarityCalculator calc(FeatureSimilarityOptions{});
  const SpanStats s = MakeSpan(5, 3);
  EXPECT_NEAR(calc.SpanPairSimilarity(s, s), 1.0, 1e-9);
}

TEST(SpanSimilarityTest, EmptySpanIsZero) {
  SpanSimilarityCalculator calc(FeatureSimilarityOptions{});
  const SpanStats s = MakeSpan(5, 3);
  const SpanStats empty;
  EXPECT_NEAR(calc.SpanPairSimilarity(s, empty), 0.0, 1e-12);
  EXPECT_NEAR(calc.SpanPairSimilarity(empty, empty), 0.0, 1e-12);
}

TEST(SpanSimilarityTest, DifferentDistributionsLowerSimilarity) {
  SpanSimilarityCalculator calc(FeatureSimilarityOptions{});
  const SpanStats a = MakeSpan(5, 1);
  const SpanStats b = MakeSpan(5, 8);  // same names, shifted distribution
  const double sim = calc.SpanPairSimilarity(a, b);
  // Names match (beta) but hashes differ (no alpha).
  EXPECT_LT(sim, 0.95);
  EXPECT_GT(sim, 0.2);
}

TEST(SpanSimilarityTest, DisjointNamesAndDistributions) {
  SpanSimilarityCalculator calc(FeatureSimilarityOptions{});
  SpanStats a = MakeSpan(4, 1);
  SpanStats b = MakeSpan(4, 8);
  for (size_t i = 0; i < b.features.size(); ++i) {
    b.features[i].name = "other" + std::to_string(i);
  }
  EXPECT_LT(calc.SpanPairSimilarity(a, b), 0.2);
}

TEST(SpanSimilarityTest, CrossKindFeaturesNeverMatch) {
  FeatureSimilarityOptions options;
  FeatureSimilarity fs(options);
  FeatureStats num = NumericalFeature("x", 2);
  FeatureStats cat;
  cat.name = "x";
  cat.kind = FeatureKind::kCategorical;
  cat.unique_terms = 100;
  cat.total_count = 1000;
  cat.top_term_counts = {500, 100, 50, 40, 30, 20, 10, 5, 3, 2};
  EXPECT_DOUBLE_EQ(fs.Similarity(num, cat), 0.0);
}

TEST(SpanSimilarityTest, Eq2Decomposition) {
  FeatureSimilarityOptions options;
  options.alpha = 0.6;
  options.beta = 0.4;
  FeatureSimilarity fs(options);
  FeatureStats f1 = NumericalFeature("same", 2);
  FeatureStats f2 = NumericalFeature("same", 2);
  EXPECT_NEAR(fs.Similarity(f1, f2), 1.0, 1e-12);  // both indicators
  FeatureStats f3 = NumericalFeature("other", 2);
  EXPECT_NEAR(fs.Similarity(f1, f3), 0.6, 1e-12);  // hash only
  FeatureStats f4 = NumericalFeature("same", 9);
  EXPECT_NEAR(fs.Similarity(f1, f4), 0.4, 1e-12);  // name only
  FeatureStats f5 = NumericalFeature("other", 9);
  EXPECT_NEAR(fs.Similarity(f1, f5), 0.0, 1e-12);  // neither
}

TEST(SequenceSimilarityTest, OrdinalAlignmentAndNormalization) {
  SpanSimilarityCalculator calc(FeatureSimilarityOptions{});
  const SpanStats s1 = MakeSpan(4, 2);
  const SpanStats s2 = MakeSpan(4, 2);
  const SpanStats s3 = MakeSpan(4, 2);
  std::vector<const SpanStats*> a = {&s1, &s2};
  std::vector<const SpanStats*> b = {&s1, &s2, &s3};
  // First two positions match perfectly; normalization by max(2,3) = 3.
  const double sim = calc.SequenceSimilarity(a, {1, 2}, b, {1, 2, 3});
  EXPECT_NEAR(sim, 2.0 / 3.0, 1e-9);
}

TEST(SequenceSimilarityTest, EmptySequences) {
  SpanSimilarityCalculator calc(FeatureSimilarityOptions{});
  const SpanStats s = MakeSpan(3, 2);
  std::vector<const SpanStats*> some = {&s};
  EXPECT_DOUBLE_EQ(calc.SequenceSimilarity({}, {}, some, {1}), 0.0);
  EXPECT_DOUBLE_EQ(calc.SequenceSimilarity({}, {}, {}, {}), 0.0);
}

TEST(SequenceSimilarityTest, ShiftedWindowsScoreLowerThanIdentical) {
  // Rolling window: {s1 s2 s3} vs {s2 s3 s4}. Ordinal matching compares
  // s1-s2, s2-s3, s3-s4, so drift lowers the score; identical windows
  // score 1.
  dataspan::SchemaConfig config;
  config.num_features = 10;
  dataspan::SpanStatsGenerator gen(config, common::Rng(31));
  std::vector<SpanStats> spans;
  for (int i = 0; i < 4; ++i) {
    gen.Shock(0.5);  // make consecutive spans clearly different
    spans.push_back(gen.NextSpan());
  }
  SpanSimilarityCalculator calc(FeatureSimilarityOptions{});
  std::vector<const SpanStats*> w1 = {&spans[0], &spans[1], &spans[2]};
  std::vector<const SpanStats*> w2 = {&spans[1], &spans[2], &spans[3]};
  const double shifted = calc.SequenceSimilarity(w1, {0, 1, 2}, w2, {1, 2, 3});
  const double same = calc.SequenceSimilarity(w1, {0, 1, 2}, w1, {0, 1, 2});
  EXPECT_NEAR(same, 1.0, 1e-9);
  EXPECT_LT(shifted, same);
}

TEST(BipartiteSimilarityTest, AtLeastSequenceSimilarity) {
  // Optimal matching can only beat (or tie) ordinal alignment.
  dataspan::SchemaConfig config;
  config.num_features = 8;
  dataspan::SpanStatsGenerator gen(config, common::Rng(41));
  std::vector<SpanStats> spans;
  for (int i = 0; i < 4; ++i) spans.push_back(gen.NextSpan());
  SpanSimilarityCalculator calc(FeatureSimilarityOptions{});
  std::vector<const SpanStats*> w1 = {&spans[0], &spans[1]};
  std::vector<const SpanStats*> w2 = {&spans[1], &spans[0]};  // swapped
  const double seq = calc.SequenceSimilarity(w1, {0, 1}, w2, {1, 0});
  const double bip = calc.BipartiteSimilarity(w1, {0, 1}, w2, {1, 0});
  EXPECT_GE(bip + 1e-9, seq);
  EXPECT_NEAR(bip, 1.0, 1e-9);  // perfect matching exists
}

TEST(SpanSimilarityCacheTest, CacheHitsProduceSameValues) {
  SpanSimilarityCalculator calc(FeatureSimilarityOptions{});
  const SpanStats a = MakeSpan(6, 2);
  const SpanStats b = MakeSpan(6, 7);
  const double first = calc.SpanPairSimilarityCached(10, a, 20, b);
  EXPECT_EQ(calc.cache_size(), 1u);
  const double second = calc.SpanPairSimilarityCached(10, a, 20, b);
  EXPECT_EQ(calc.cache_size(), 1u);
  EXPECT_DOUBLE_EQ(first, second);
  // Symmetric key: (20, 10) also hits.
  const double swapped = calc.SpanPairSimilarityCached(20, b, 10, a);
  EXPECT_EQ(calc.cache_size(), 1u);
  EXPECT_DOUBLE_EQ(first, swapped);
  calc.ClearCache();
  EXPECT_EQ(calc.cache_size(), 0u);
}

TEST(SpanSimilarityCacheTest, UncachedMatchesCached) {
  SpanSimilarityCalculator calc(FeatureSimilarityOptions{});
  const SpanStats a = MakeSpan(5, 1);
  const SpanStats b = MakeSpan(5, 8);
  EXPECT_NEAR(calc.SpanPairSimilarity(a, b),
              calc.SpanPairSimilarityCached(1, a, 2, b), 1e-12);
}

}  // namespace
}  // namespace mlprov::similarity
