#include "obs/timeline.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace mlprov::obs {
namespace {

/// Fresh registry state per test: the global registry is process-wide
/// and other suites in this binary increment it.
class TimelineTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::Global().Reset(); }
  void TearDown() override {
    PeriodicSampler::Global().Reset();
    Registry::Global().Reset();
  }
};

TEST_F(TimelineTest, DisabledSamplerObservesNothing) {
  PeriodicSampler sampler;
  sampler.Observe(100);
  EXPECT_EQ(sampler.NumSamples(), 0u);
  EXPECT_EQ(sampler.ObservedRecords(), 0u);
  const Json timeline = sampler.ToJson();
  EXPECT_FALSE(timeline.Find("enabled")->AsBool(true));
  EXPECT_EQ(timeline.Find("samples")->size(), 0u);
}

TEST_F(TimelineTest, IntervalCrossingCapturesDeltaSamples) {
  Counter* counter = Registry::Global().GetCounter("test.ticks");
  counter->Add(10);  // pre-existing total becomes the baseline

  PeriodicSampler sampler;
  PeriodicSampler::Options options;
  options.interval_records = 100;
  sampler.Enable(options);

  counter->Add(7);
  sampler.Observe(99);  // below the interval: no sample
  EXPECT_EQ(sampler.NumSamples(), 0u);
  sampler.Observe(1);  // crosses 100
  ASSERT_EQ(sampler.NumSamples(), 1u);
  counter->Add(5);
  sampler.Observe(250);  // crosses 200 and 300 in one tick: one sample
  ASSERT_EQ(sampler.NumSamples(), 2u);

  const Json timeline = sampler.ToJson();
  EXPECT_TRUE(timeline.Find("enabled")->AsBool(false));
  const Json* samples = timeline.Find("samples");
  ASSERT_EQ(samples->size(), 2u);
  // Counters are *deltas* against the previous sample (the Enable()
  // baseline for the first), not cumulative totals.
  EXPECT_EQ(samples->at(0).Find("counters")->Find("test.ticks")->AsInt(),
            7);
  EXPECT_EQ(samples->at(1).Find("counters")->Find("test.ticks")->AsInt(),
            5);
  // seq and records are monotone.
  EXPECT_EQ(samples->at(0).Find("seq")->AsInt(), 0);
  EXPECT_EQ(samples->at(1).Find("seq")->AsInt(), 1);
  EXPECT_LT(samples->at(0).Find("records")->AsInt(),
            samples->at(1).Find("records")->AsInt());
  EXPECT_LE(samples->at(0).Find("ts_us")->AsInt(),
            samples->at(1).Find("ts_us")->AsInt());
}

TEST_F(TimelineTest, GaugesReportCurrentValueNotDelta) {
  Gauge* gauge = Registry::Global().GetGauge("test.lag");
  PeriodicSampler sampler;
  PeriodicSampler::Options options;
  options.interval_records = 1;
  sampler.Enable(options);

  gauge->Set(3.5);
  sampler.Observe(1);
  gauge->Set(2.0);
  sampler.Observe(1);

  const Json timeline = sampler.ToJson();
  const Json* samples = timeline.Find("samples");
  ASSERT_EQ(samples->size(), 2u);
  EXPECT_DOUBLE_EQ(
      samples->at(0).Find("gauges")->Find("test.lag")->AsDouble(), 3.5);
  EXPECT_DOUBLE_EQ(
      samples->at(1).Find("gauges")->Find("test.lag")->AsDouble(), 2.0);
}

TEST_F(TimelineTest, RingEvictsOldestPastCapacity) {
  PeriodicSampler sampler;
  PeriodicSampler::Options options;
  options.interval_records = 1;
  options.capacity = 4;
  sampler.Enable(options);
  for (int i = 0; i < 10; ++i) sampler.Observe(1);

  const Json timeline = sampler.ToJson();
  const Json* samples = timeline.Find("samples");
  ASSERT_EQ(samples->size(), 4u);
  EXPECT_EQ(timeline.Find("evicted")->AsInt(), 6);
  // The survivors are the *newest* samples, still in seq order.
  EXPECT_EQ(samples->at(0).Find("seq")->AsInt(), 6);
  EXPECT_EQ(samples->at(3).Find("seq")->AsInt(), 9);
}

TEST_F(TimelineTest, CountersCreatedMidRunAppearInNextDelta) {
  PeriodicSampler sampler;
  PeriodicSampler::Options options;
  options.interval_records = 1;
  sampler.Enable(options);
  sampler.Observe(1);
  // A counter born after the baseline snapshot must still be picked up.
  Registry::Global().GetCounter("test.born_late")->Add(3);
  sampler.Observe(1);

  const Json timeline = sampler.ToJson();
  const Json* samples = timeline.Find("samples");
  ASSERT_EQ(samples->size(), 2u);
  EXPECT_EQ(samples->at(0).Find("counters")->Find("test.born_late"),
            nullptr);
  EXPECT_EQ(
      samples->at(1).Find("counters")->Find("test.born_late")->AsInt(), 3);
}

TEST_F(TimelineTest, WriteToProducesParseableTimeline) {
  const std::string path =
      ::testing::TempDir() + "/timeline_writeto_test.json";
  PeriodicSampler sampler;
  PeriodicSampler::Options options;
  options.interval_records = 1;
  sampler.Enable(options);
  sampler.Observe(1);
  sampler.SampleNow("final");
  ASSERT_TRUE(sampler.WriteTo(path).ok());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = Json::Parse(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("samples")->size(), 2u);
  EXPECT_EQ(
      parsed->Find("samples")->at(1).Find("reason")->AsString(), "final");
  std::remove(path.c_str());
}

TEST_F(TimelineTest, ExpositionTextRendersRegistry) {
  // Direct registry calls (not the macros) so the rendering is
  // exercised even in a MLPROV_OBS_NOOP build.
  Registry::Global().GetCounter("stream.records")->Add(42);
  Registry::Global().GetGauge("session.p0.seal_lag_hours")->Set(1.5);
  Registry::Global().GetHistogram("test.latency")->Record(3.0);

  const std::string text = ExpositionText(Registry::Global());
  EXPECT_NE(text.find("# TYPE mlprov_stream_records counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("mlprov_stream_records 42"), std::string::npos);
  EXPECT_NE(
      text.find("# TYPE mlprov_session_p0_seal_lag_hours gauge"),
      std::string::npos);
  EXPECT_NE(text.find("mlprov_test_latency_count"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  // Prometheus text format: every line is name[{labels}] value.
  EXPECT_EQ(text.back(), '\n');
}

TEST_F(TimelineTest, FlightRecorderKeepsLastKRecords) {
  FlightRecorder::Options options;
  options.capacity = 4;
  FlightRecorder flight("ring_test", options);
  for (int i = 0; i < 10; ++i) {
    flight.NoteRecord('E', i, 100 * i);
  }
  EXPECT_EQ(flight.NumRecordsNoted(), 10u);

  const Json dump = flight.ToJson();
  const Json* records = dump.Find("records");
  ASSERT_EQ(records->size(), 4u);
  // Oldest-first within the surviving window [6, 10).
  EXPECT_EQ(records->at(0).Find("seq")->AsInt(), 6);
  EXPECT_EQ(records->at(0).Find("id")->AsInt(), 6);
  EXPECT_EQ(records->at(3).Find("seq")->AsInt(), 9);
  EXPECT_EQ(records->at(3).Find("time")->AsInt(), 900);
  EXPECT_EQ(records->at(0).Find("kind")->AsString(), "E");
}

TEST_F(TimelineTest, FlightRecorderNoteErrorMarksFailed) {
  FlightRecorder flight("error_test");
  EXPECT_FALSE(flight.failed());
  Json detail = Json::Object();
  detail.Set("record_index", static_cast<int64_t>(17));
  flight.NoteError("watermark regressed", std::move(detail));
  EXPECT_TRUE(flight.failed());

  const Json dump = flight.ToJson();
  EXPECT_TRUE(dump.Find("failed")->AsBool(false));
  EXPECT_EQ(dump.Find("error")->AsString(), "watermark regressed");
  const Json* entries = dump.Find("entries");
  ASSERT_GE(entries->size(), 1u);
  const Json& last = entries->at(entries->size() - 1);
  EXPECT_EQ(last.Find("kind")->AsString(), "error");
  EXPECT_EQ(last.Find("detail")->Find("message")->AsString(),
            "watermark regressed");
  EXPECT_EQ(
      last.Find("detail")->Find("context")->Find("record_index")->AsInt(),
      17);
}

TEST_F(TimelineTest, FlightRecorderDumpWritesSanitizedFile) {
  const std::string dir = ::testing::TempDir();
  FlightRecorder flight("weird/name with spaces");
  flight.NoteRecord('C', 1, 0);
  ASSERT_TRUE(flight.Dump(dir).ok());

  std::ifstream in(dir + "/flight_weird_name_with_spaces.json");
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = Json::Parse(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("session")->AsString(), "weird/name with spaces");
  std::remove((dir + "/flight_weird_name_with_spaces.json").c_str());
}

TEST_F(TimelineTest, FlightRecorderDumpSkippedWithoutDir) {
  // No explicit dir and no process-wide dir: recording is always on,
  // persistence is opt-in.
  SetFlightRecorderDir("");
  FlightRecorder flight("no_dir");
  flight.NoteRecord('C', 1, 0);
  EXPECT_TRUE(flight.Dump().ok());
}

}  // namespace
}  // namespace mlprov::obs
