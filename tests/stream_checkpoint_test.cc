#include "stream/checkpoint.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "core/graphlet_analysis.h"
#include "core/waste_mitigation.h"
#include "simulator/corpus_generator.h"
#include "stream/fingerprint.h"
#include "stream/online_scorer.h"
#include "stream/session.h"
#include "stream/supervisor.h"

namespace mlprov::stream {
namespace {

namespace fs = std::filesystem;
using common::StatusCode;

sim::CorpusConfig SmallConfig() {
  sim::CorpusConfig config;
  config.num_pipelines = 4;
  config.seed = 4242;
  config.horizon_days = 45.0;
  return config;
}

class StreamCheckpointTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new sim::Corpus(sim::GenerateCorpus(SmallConfig()));
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }

  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("mlprov_ckpt_" + std::string(::testing::UnitTest::GetInstance()
                                              ->current_test_info()
                                              ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static sim::Corpus* corpus_;
  std::string dir_;
};

sim::Corpus* StreamCheckpointTest::corpus_ = nullptr;

/// Runs `trace` uninterrupted and returns the result fingerprint.
uint64_t UninterruptedFingerprint(const sim::PipelineTrace& trace,
                                  const SessionOptions& options = {}) {
  ProvenanceSession session(options);
  TraceRecordSource source(trace);
  const sim::ProvenanceRecord* record = nullptr;
  for (uint64_t i = 0; (record = source.Get(i)) != nullptr; ++i) {
    EXPECT_TRUE(session.Ingest(*record).ok());
  }
  auto result = session.Finish();
  EXPECT_TRUE(result.ok()) << result.status();
  return FingerprintSessionResult(*result);
}

TEST_F(StreamCheckpointTest, SnapshotAtEveryQuarterRestoresByteIdentical) {
  const sim::PipelineTrace& trace = corpus_->pipelines[0];
  TraceRecordSource source(trace);
  ASSERT_GT(source.size(), 8u);
  const uint64_t expected = UninterruptedFingerprint(trace);

  for (int quarter = 1; quarter <= 3; ++quarter) {
    const uint64_t split = source.size() * quarter / 4;
    ProvenanceSession first;
    for (uint64_t i = 0; i < split; ++i) {
      ASSERT_TRUE(first.Ingest(*source.Get(i)).ok());
    }
    std::string payload;
    first.EncodeState(payload);

    ProvenanceSession second;
    auto restored = second.RestoreState(payload);
    ASSERT_TRUE(restored.ok()) << restored.message();
    EXPECT_TRUE(second.recovered());
    EXPECT_TRUE(second.Health().recovered);
    for (uint64_t i = split; i < source.size(); ++i) {
      ASSERT_TRUE(second.Ingest(*source.Get(i)).ok());
    }
    auto result = second.Finish();
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(FingerprintSessionResult(*result), expected)
        << "split at quarter " << quarter;
  }
}

TEST_F(StreamCheckpointTest, ScoringSessionsSnapshotTheScorerPosition) {
  auto segmented = core::SegmentCorpus(*corpus_);
  auto dataset = core::BuildWasteDataset(*corpus_, segmented);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  auto scorer = OnlineScorer::Train(*dataset);
  ASSERT_TRUE(scorer.ok()) << scorer.status();

  SessionOptions options;
  options.scorer = &*scorer;
  const sim::PipelineTrace& trace = corpus_->pipelines[1];
  TraceRecordSource source(trace);
  const uint64_t expected = UninterruptedFingerprint(trace, options);

  const uint64_t split = source.size() / 2;
  ProvenanceSession first(options);
  for (uint64_t i = 0; i < split; ++i) {
    ASSERT_TRUE(first.Ingest(*source.Get(i)).ok());
  }
  std::string payload;
  first.EncodeState(payload);

  // Recovery must attach the same scorer; a bare session is rejected.
  ProvenanceSession bare;
  EXPECT_EQ(bare.RestoreState(payload).code(),
            StatusCode::kFailedPrecondition);

  ProvenanceSession second(options);
  ASSERT_TRUE(second.RestoreState(payload).ok());
  for (uint64_t i = split; i < source.size(); ++i) {
    ASSERT_TRUE(second.Ingest(*source.Get(i)).ok());
  }
  auto result = second.Finish();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(FingerprintSessionResult(*result), expected);
  EXPECT_FALSE(result->decisions.empty());
}

TEST_F(StreamCheckpointTest, RestoreRequiresAFreshSession) {
  const sim::PipelineTrace& trace = corpus_->pipelines[0];
  TraceRecordSource source(trace);
  ProvenanceSession session;
  ASSERT_TRUE(session.Ingest(*source.Get(0)).ok());
  std::string payload;
  session.EncodeState(payload);

  ProvenanceSession used;
  ASSERT_TRUE(used.Ingest(*source.Get(0)).ok());
  EXPECT_EQ(used.RestoreState(payload).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(StreamCheckpointTest, FilesRoundTripWithCrcProtection) {
  const sim::PipelineTrace& trace = corpus_->pipelines[0];
  TraceRecordSource source(trace);
  const uint64_t split = source.size() / 2;
  ProvenanceSession session;
  for (uint64_t i = 0; i < split; ++i) {
    ASSERT_TRUE(session.Ingest(*source.Get(i)).ok());
  }
  ASSERT_TRUE(WriteCheckpoint(dir_, split, session).ok());

  auto listed = ListCheckpoints(dir_);
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 1u);
  EXPECT_EQ(listed->front().records, split);

  auto loaded = LoadNewestCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_TRUE(loaded->found);
  EXPECT_EQ(loaded->records, split);
  EXPECT_EQ(loaded->path, listed->front().path);
  EXPECT_TRUE(loaded->rejected.empty());

  std::string direct;
  session.EncodeState(direct);
  EXPECT_EQ(loaded->payload, direct);
}

TEST_F(StreamCheckpointTest, DamagedNewestFallsBackToOlder) {
  const sim::PipelineTrace& trace = corpus_->pipelines[0];
  TraceRecordSource source(trace);
  ProvenanceSession session;
  uint64_t fed = 0;
  for (; fed < source.size() / 3; ++fed) {
    ASSERT_TRUE(session.Ingest(*source.Get(fed)).ok());
  }
  ASSERT_TRUE(WriteCheckpoint(dir_, fed, session).ok());
  const uint64_t older = fed;
  for (; fed < source.size() / 2; ++fed) {
    ASSERT_TRUE(session.Ingest(*source.Get(fed)).ok());
  }
  ASSERT_TRUE(WriteCheckpoint(dir_, fed, session).ok());

  // Flip a byte in the newest file: CRC must reject it.
  auto listed = ListCheckpoints(dir_);
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 2u);
  const std::string newest = listed->back().path;
  {
    std::ifstream in(newest, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    bytes[bytes.size() / 2] =
        static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
    std::ofstream out(newest, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  auto loaded = LoadNewestCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->found);
  EXPECT_EQ(loaded->records, older);
  ASSERT_EQ(loaded->rejected.size(), 1u);
  EXPECT_EQ(loaded->rejected.front(), newest);

  // The fallback payload still restores.
  ProvenanceSession recovered;
  EXPECT_TRUE(recovered.RestoreState(loaded->payload).ok());
}

TEST_F(StreamCheckpointTest, PruneKeepsTheNewestAndReportsTheOldestKept) {
  const sim::PipelineTrace& trace = corpus_->pipelines[0];
  TraceRecordSource source(trace);
  ProvenanceSession session;
  std::vector<uint64_t> written;
  uint64_t fed = 0;
  for (int i = 0; i < 5; ++i) {
    const uint64_t target = source.size() * (i + 1) / 6;
    for (; fed < target; ++fed) {
      ASSERT_TRUE(session.Ingest(*source.Get(fed)).ok());
    }
    ASSERT_TRUE(WriteCheckpoint(dir_, fed, session).ok());
    written.push_back(fed);
  }

  auto oldest_kept = PruneCheckpoints(dir_, 2);
  ASSERT_TRUE(oldest_kept.ok());
  EXPECT_EQ(*oldest_kept, written[3]);
  auto listed = ListCheckpoints(dir_);
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 2u);
  EXPECT_EQ(listed->front().records, written[3]);
  EXPECT_EQ(listed->back().records, written[4]);

  auto all = PruneCheckpoints(dir_, 1);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, written[4]);
}

TEST_F(StreamCheckpointTest, EmptyDirectoryIsAFreshStart) {
  auto loaded = LoadNewestCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->found);
  auto missing = LoadNewestCheckpoint(dir_ + "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->found);
  auto pruned = PruneCheckpoints(dir_, 3);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(*pruned, 0u);
}

}  // namespace
}  // namespace mlprov::stream
