#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/gbdt.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"

namespace mlprov::ml {
namespace {

/// Linearly separable blob pair.
Dataset LinearBlobs(int n_per_class, uint64_t seed, double gap = 2.0) {
  Dataset d({"x", "y"});
  common::Rng rng(seed);
  for (int i = 0; i < n_per_class; ++i) {
    d.AddRow({rng.Normal(-gap / 2, 0.5), rng.Normal(0.0, 0.5)}, 0);
    d.AddRow({rng.Normal(gap / 2, 0.5), rng.Normal(0.0, 0.5)}, 1);
  }
  return d;
}

/// XOR-style dataset that defeats linear models.
Dataset XorData(int n_per_quadrant, uint64_t seed) {
  Dataset d({"x", "y"});
  common::Rng rng(seed);
  for (int i = 0; i < n_per_quadrant; ++i) {
    for (int sx : {-1, 1}) {
      for (int sy : {-1, 1}) {
        const double x = sx * rng.Uniform(0.5, 1.5);
        const double y = sy * rng.Uniform(0.5, 1.5);
        d.AddRow({x, y}, sx * sy > 0 ? 1 : 0);
      }
    }
  }
  return d;
}

std::vector<size_t> AllRows(const Dataset& d) {
  std::vector<size_t> rows(d.NumRows());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return rows;
}

TEST(DecisionTreeTest, FitsSimpleThreshold) {
  Dataset d({"x"});
  for (int i = 0; i < 50; ++i) {
    d.AddRow({static_cast<double>(i)}, i >= 25 ? 1 : 0);
  }
  DecisionTree::Options options;
  DecisionTree tree(options);
  common::Rng rng(1);
  tree.Fit(d, AllRows(d), nullptr, rng);
  ASSERT_TRUE(tree.IsFitted());
  const double left = 10.0, right = 40.0;
  EXPECT_LT(tree.Predict(&left), 0.5);
  EXPECT_GT(tree.Predict(&right), 0.5);
  // A single split suffices: 3 nodes, depth 1.
  EXPECT_EQ(tree.NumNodes(), 3u);
  EXPECT_EQ(tree.Depth(), 1);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  Dataset d = XorData(30, 5);
  DecisionTree::Options options;
  options.max_depth = 1;
  DecisionTree tree(options);
  common::Rng rng(2);
  tree.Fit(d, AllRows(d), nullptr, rng);
  EXPECT_LE(tree.Depth(), 1);
}

TEST(DecisionTreeTest, SolvesXor) {
  Dataset d = XorData(40, 7);
  DecisionTree::Options options;
  DecisionTree tree(options);
  common::Rng rng(3);
  tree.Fit(d, AllRows(d), nullptr, rng);
  size_t correct = 0;
  for (size_t r = 0; r < d.NumRows(); ++r) {
    const int pred = tree.Predict(d, r) >= 0.5 ? 1 : 0;
    correct += static_cast<size_t>(pred == d.Label(r));
  }
  EXPECT_GT(static_cast<double>(correct) / d.NumRows(), 0.95);
}

TEST(DecisionTreeTest, PureNodeBecomesLeaf) {
  Dataset d({"x"});
  for (int i = 0; i < 10; ++i) d.AddRow({static_cast<double>(i)}, 1);
  DecisionTree tree(DecisionTree::Options{});
  common::Rng rng(4);
  tree.Fit(d, AllRows(d), nullptr, rng);
  EXPECT_EQ(tree.NumNodes(), 1u);
  const double x = 3.0;
  EXPECT_DOUBLE_EQ(tree.Predict(&x), 1.0);
}

TEST(DecisionTreeTest, EmptyRowsYieldDefaultLeaf) {
  Dataset d({"x"});
  d.AddRow({1.0}, 1);
  DecisionTree tree(DecisionTree::Options{});
  common::Rng rng(5);
  tree.Fit(d, {}, nullptr, rng);
  const double x = 0.0;
  EXPECT_DOUBLE_EQ(tree.Predict(&x), 0.0);
}

TEST(DecisionTreeTest, RegressionModeFitsResiduals) {
  Dataset d({"x"});
  std::vector<double> targets;
  for (int i = 0; i < 100; ++i) {
    d.AddRow({static_cast<double>(i)}, 0);
    targets.push_back(i < 50 ? -1.5 : 2.5);
  }
  DecisionTree::Options options;
  options.task = DecisionTree::Task::kRegression;
  DecisionTree tree(options);
  common::Rng rng(6);
  tree.Fit(d, AllRows(d), &targets, rng);
  const double lo = 10.0, hi = 80.0;
  EXPECT_NEAR(tree.Predict(&lo), -1.5, 1e-9);
  EXPECT_NEAR(tree.Predict(&hi), 2.5, 1e-9);
}

TEST(DecisionTreeTest, FeatureImportanceIdentifiesSignal) {
  // Feature 0 is pure noise, feature 1 fully determines the label.
  Dataset d({"noise", "signal"});
  common::Rng data_rng(8);
  for (int i = 0; i < 200; ++i) {
    const int y = i % 2;
    d.AddRow({data_rng.NextDouble(), static_cast<double>(y)}, y);
  }
  DecisionTree tree(DecisionTree::Options{});
  common::Rng rng(9);
  tree.Fit(d, AllRows(d), nullptr, rng);
  const auto& imp = tree.FeatureImportance();
  EXPECT_GT(imp[1], imp[0]);
  EXPECT_GT(imp[1], 0.0);
}

TEST(DecisionTreeTest, MinSamplesLeafRespected) {
  Dataset d({"x"});
  for (int i = 0; i < 20; ++i) {
    d.AddRow({static_cast<double>(i)}, i >= 19 ? 1 : 0);
  }
  DecisionTree::Options options;
  options.min_samples_leaf = 5;
  DecisionTree tree(options);
  common::Rng rng(10);
  tree.Fit(d, AllRows(d), nullptr, rng);
  // The lone positive cannot be isolated into a leaf smaller than 5.
  const double x = 19.0;
  EXPECT_LT(tree.Predict(&x), 0.5);
}

TEST(RandomForestTest, SeparatesLinearBlobs) {
  Dataset train = LinearBlobs(200, 11);
  Dataset test = LinearBlobs(100, 12);
  RandomForest::Options options;
  options.num_trees = 20;
  RandomForest forest(options);
  forest.Fit(train);
  ASSERT_TRUE(forest.IsFitted());
  EXPECT_EQ(forest.NumTrees(), 20u);
  const auto scores = forest.PredictProba(test);
  std::vector<int> labels(test.NumRows());
  for (size_t r = 0; r < test.NumRows(); ++r) labels[r] = test.Label(r);
  EXPECT_GT(BalancedAccuracy(scores, labels), 0.95);
}

TEST(RandomForestTest, SolvesXorBetterThanChance) {
  Dataset train = XorData(60, 13);
  Dataset test = XorData(30, 14);
  RandomForest::Options options;
  options.num_trees = 30;
  RandomForest forest(options);
  forest.Fit(train);
  const auto scores = forest.PredictProba(test);
  std::vector<int> labels(test.NumRows());
  for (size_t r = 0; r < test.NumRows(); ++r) labels[r] = test.Label(r);
  EXPECT_GT(BalancedAccuracy(scores, labels), 0.9);
}

TEST(RandomForestTest, HandlesImbalancedClasses) {
  // 95/5 imbalance; balanced bootstrap should still detect positives.
  Dataset d({"x"});
  common::Rng rng(15);
  for (int i = 0; i < 1000; ++i) {
    const int y = i % 20 == 0 ? 1 : 0;
    d.AddRow({rng.Normal(y ? 2.0 : -2.0, 0.7)}, y);
  }
  RandomForest::Options options;
  options.num_trees = 15;
  RandomForest forest(options);
  forest.Fit(d);
  const auto scores = forest.PredictProba(d);
  std::vector<int> labels(d.NumRows());
  for (size_t r = 0; r < d.NumRows(); ++r) labels[r] = d.Label(r);
  const Confusion c = ConfusionAt(scores, labels, 0.5);
  EXPECT_GT(c.TruePositiveRate(), 0.9);
  EXPECT_GT(c.TrueNegativeRate(), 0.9);
}

TEST(RandomForestTest, DeterministicForSeed) {
  Dataset d = LinearBlobs(50, 16);
  RandomForest::Options options;
  options.num_trees = 5;
  options.seed = 99;
  RandomForest f1(options), f2(options);
  f1.Fit(d);
  f2.Fit(d);
  const auto p1 = f1.PredictProba(d);
  const auto p2 = f2.PredictProba(d);
  for (size_t i = 0; i < p1.size(); ++i) EXPECT_DOUBLE_EQ(p1[i], p2[i]);
}

TEST(RandomForestTest, FeatureImportanceNormalized) {
  Dataset d = LinearBlobs(100, 17);
  RandomForest::Options options;
  options.num_trees = 10;
  RandomForest forest(options);
  forest.Fit(d);
  const auto imp = forest.FeatureImportance();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
  EXPECT_GT(imp[0], imp[1]);  // x carries the signal
}

TEST(LogisticRegressionTest, SeparatesLinearBlobs) {
  Dataset train = LinearBlobs(200, 18);
  Dataset test = LinearBlobs(100, 19);
  LogisticRegression lr{LogisticRegression::Options{}};
  lr.Fit(train);
  ASSERT_TRUE(lr.IsFitted());
  const auto scores = lr.PredictProba(test);
  std::vector<int> labels(test.NumRows());
  for (size_t r = 0; r < test.NumRows(); ++r) labels[r] = test.Label(r);
  EXPECT_GT(BalancedAccuracy(scores, labels), 0.95);
  // Weight on x should dominate and be positive.
  EXPECT_GT(lr.weights()[0], std::abs(lr.weights()[1]) * 3);
}

TEST(LogisticRegressionTest, FailsOnXorAsExpected) {
  Dataset d = XorData(60, 20);
  LogisticRegression lr{LogisticRegression::Options{}};
  lr.Fit(d);
  const auto scores = lr.PredictProba(d);
  std::vector<int> labels(d.NumRows());
  for (size_t r = 0; r < d.NumRows(); ++r) labels[r] = d.Label(r);
  EXPECT_LT(BalancedAccuracy(scores, labels), 0.65);
}

TEST(LogisticRegressionTest, ProbabilitiesInRange) {
  Dataset d = LinearBlobs(50, 21);
  LogisticRegression lr{LogisticRegression::Options{}};
  lr.Fit(d);
  for (double p : lr.PredictProba(d)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(GbdtTest, SeparatesLinearBlobs) {
  Dataset train = LinearBlobs(200, 22);
  Dataset test = LinearBlobs(100, 23);
  Gbdt::Options options;
  options.num_rounds = 40;
  Gbdt model(options);
  model.Fit(train);
  ASSERT_TRUE(model.IsFitted());
  EXPECT_EQ(model.NumTrees(), 40u);
  const auto scores = model.PredictProba(test);
  std::vector<int> labels(test.NumRows());
  for (size_t r = 0; r < test.NumRows(); ++r) labels[r] = test.Label(r);
  EXPECT_GT(BalancedAccuracy(scores, labels), 0.95);
}

TEST(GbdtTest, SolvesXor) {
  Dataset train = XorData(60, 24);
  Gbdt::Options options;
  options.num_rounds = 60;
  Gbdt model(options);
  model.Fit(train);
  const auto scores = model.PredictProba(train);
  std::vector<int> labels(train.NumRows());
  for (size_t r = 0; r < train.NumRows(); ++r) labels[r] = train.Label(r);
  EXPECT_GT(BalancedAccuracy(scores, labels), 0.9);
}

TEST(GbdtTest, EmptyFitIsSafe) {
  Gbdt model{Gbdt::Options{}};
  Dataset d({"x"});
  model.Fit(d, {});
  EXPECT_EQ(model.NumTrees(), 0u);
}

}  // namespace
}  // namespace mlprov::ml
