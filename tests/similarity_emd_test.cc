#include "similarity/emd.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mlprov::similarity {
namespace {

TEST(Emd1DTest, IdenticalDistributionsHaveZeroDistance) {
  const std::vector<double> p = {0.1, 0.2, 0.3, 0.4};
  EXPECT_NEAR(Emd1D(p, p), 0.0, 1e-12);
}

TEST(Emd1DTest, OppositeCornersGiveMaxDistance) {
  // All mass at bin 0 vs all mass at bin n-1: EMD = (n-1)/n.
  const std::vector<double> p = {1, 0, 0, 0};
  const std::vector<double> q = {0, 0, 0, 1};
  EXPECT_NEAR(Emd1D(p, q), 0.75, 1e-12);
}

TEST(Emd1DTest, Symmetry) {
  const std::vector<double> p = {0.6, 0.1, 0.3};
  const std::vector<double> q = {0.2, 0.5, 0.3};
  EXPECT_NEAR(Emd1D(p, q), Emd1D(q, p), 1e-12);
}

TEST(Emd1DTest, UnequalLengthsPadded) {
  const std::vector<double> p = {1.0};
  const std::vector<double> q = {0.0, 1.0};
  EXPECT_NEAR(Emd1D(p, q), 0.5, 1e-12);
}

TEST(Emd1DTest, EmptyInputsGiveZero) {
  EXPECT_NEAR(Emd1D({}, {}), 0.0, 1e-12);
  EXPECT_NEAR(Emd1D({0.0, 0.0}, {1.0, 0.0}), 0.0, 1e-12);
}

TEST(Emd1DTest, TriangleInequalityHolds) {
  const std::vector<double> p = {0.7, 0.2, 0.1, 0.0};
  const std::vector<double> q = {0.1, 0.3, 0.3, 0.3};
  const std::vector<double> r = {0.25, 0.25, 0.25, 0.25};
  EXPECT_LE(Emd1D(p, q), Emd1D(p, r) + Emd1D(r, q) + 1e-12);
}

TEST(EmdExactTest, MatchesClosedForm1D) {
  // Ground distance |i - j| / n reproduces the 1-D closed form.
  const std::vector<double> p = {0.5, 0.0, 0.2, 0.3};
  const std::vector<double> q = {0.1, 0.4, 0.4, 0.1};
  const size_t n = 4;
  const double exact = EarthMoversDistance(
      p, q, [n](size_t i, size_t j) {
        return std::abs(static_cast<double>(i) - static_cast<double>(j)) /
               static_cast<double>(n);
      });
  EXPECT_NEAR(exact, Emd1D(p, q), 1e-9);
}

TEST(EmdExactTest, ZeroCostWhenDistributionsMatch) {
  const std::vector<double> p = {0.25, 0.75};
  const double d = EarthMoversDistance(p, p, [](size_t i, size_t j) {
    return i == j ? 0.0 : 1.0;
  });
  EXPECT_NEAR(d, 0.0, 1e-12);
}

TEST(EmdExactTest, UniformToUniformBinaryCost) {
  // 2 sources, 3 sinks, cost 0 only for (0,0): optimal plan routes source
  // 0's half to sink 0 at cost 0, everything else at cost 1.
  const std::vector<double> supply = {1.0, 1.0};
  const std::vector<double> demand = {1.0, 1.0, 1.0};
  const double d = EarthMoversDistance(
      supply, demand, [](size_t i, size_t j) {
        return (i == 0 && j == 0) ? 0.0 : 1.0;
      });
  // Source 0 has mass 0.5; sink 0 demands 1/3; overlap at cost 0 is 1/3.
  EXPECT_NEAR(d, 1.0 - 1.0 / 3.0, 1e-9);
}

TEST(EmdExactTest, EmptySidesGiveZero) {
  EXPECT_NEAR(EarthMoversDistance({}, {1.0},
                                  [](size_t, size_t) { return 1.0; }),
              0.0, 1e-12);
  EXPECT_NEAR(EarthMoversDistance({0.0}, {1.0},
                                  [](size_t, size_t) { return 1.0; }),
              0.0, 1e-12);
}

TEST(EmdExactTest, PicksCheaperAssignment) {
  // Classic case where greedy level-0 matching is still optimal but the
  // solver must route around: verify exact optimum on a 2x2.
  const std::vector<double> p = {1.0, 1.0};
  const std::vector<double> q = {1.0, 1.0};
  // cost(0,0)=0.9, cost(0,1)=0.1, cost(1,0)=0.1, cost(1,1)=0.9 -> cross.
  const double d = EarthMoversDistance(
      p, q, [](size_t i, size_t j) { return i == j ? 0.9 : 0.1; });
  EXPECT_NEAR(d, 0.1, 1e-9);
}

TEST(EmdExactTest, SymmetricInArguments) {
  const std::vector<double> p = {0.2, 0.8};
  const std::vector<double> q = {0.5, 0.25, 0.25};
  auto cost = [](size_t i, size_t j) {
    return 0.1 * static_cast<double>(i + 1) * static_cast<double>(j + 1);
  };
  auto cost_t = [&](size_t i, size_t j) { return cost(j, i); };
  EXPECT_NEAR(EarthMoversDistance(p, q, cost),
              EarthMoversDistance(q, p, cost_t), 1e-9);
}

TEST(HungarianTest, PerfectDiagonal) {
  const double w = MaxBipartiteMatchWeight(
      3, 3, [](size_t i, size_t j) { return i == j ? 1.0 : 0.0; });
  EXPECT_NEAR(w, 3.0, 1e-9);
}

TEST(HungarianTest, AntiDiagonalBetter) {
  // Matching must prefer the anti-diagonal: w(i,j) = 1 iff i + j == 1.
  const double w = MaxBipartiteMatchWeight(
      2, 2, [](size_t i, size_t j) { return i + j == 1 ? 1.0 : 0.2; });
  EXPECT_NEAR(w, 2.0, 1e-9);
}

TEST(HungarianTest, RectangularMatrices) {
  // 2 rows, 3 cols: best two of three columns are used.
  const double w = MaxBipartiteMatchWeight(
      2, 3, [](size_t i, size_t j) {
        const double table[2][3] = {{0.9, 0.1, 0.5}, {0.2, 0.8, 0.3}};
        return table[i][j];
      });
  EXPECT_NEAR(w, 1.7, 1e-9);
  // Transposed orientation gives the same value.
  const double wt = MaxBipartiteMatchWeight(
      3, 2, [](size_t i, size_t j) {
        const double table[2][3] = {{0.9, 0.1, 0.5}, {0.2, 0.8, 0.3}};
        return table[j][i];
      });
  EXPECT_NEAR(wt, 1.7, 1e-9);
}

TEST(HungarianTest, EmptySides) {
  EXPECT_NEAR(
      MaxBipartiteMatchWeight(0, 3, [](size_t, size_t) { return 1.0; }),
      0.0, 1e-12);
  EXPECT_NEAR(
      MaxBipartiteMatchWeight(3, 0, [](size_t, size_t) { return 1.0; }),
      0.0, 1e-12);
}

TEST(HungarianTest, NeedsAugmentingExchange) {
  // Greedy picks (0,0)=5 then is stuck with (1,1)=0; optimal is 4+4.
  const double w = MaxBipartiteMatchWeight(
      2, 2, [](size_t i, size_t j) {
        const double table[2][2] = {{5.0, 4.0}, {4.0, 0.0}};
        return table[i][j];
      });
  EXPECT_NEAR(w, 8.0, 1e-9);
}

}  // namespace
}  // namespace mlprov::similarity
