#include "stream/session.h"

#include <gtest/gtest.h>

#include "common/status.h"
#include "metadata/types.h"
#include "simulator/provenance_sink.h"

namespace mlprov::stream {
namespace {

using common::StatusCode;
using metadata::ArtifactId;
using metadata::ArtifactType;
using metadata::EventKind;
using metadata::ExecutionId;
using metadata::ExecutionType;
using metadata::Timestamp;
using sim::ProvenanceRecord;

ProvenanceRecord ContextRecord(metadata::ContextId id,
                               const std::string& name) {
  ProvenanceRecord record;
  record.kind = ProvenanceRecord::Kind::kContext;
  record.context.id = id;
  record.context.name = name;
  return record;
}

ProvenanceRecord ExecRecord(ExecutionId id, ExecutionType type,
                            Timestamp start, Timestamp end,
                            double cost = 1.0, bool succeeded = true) {
  ProvenanceRecord record;
  record.kind = ProvenanceRecord::Kind::kExecution;
  record.execution.id = id;
  record.execution.type = type;
  record.execution.start_time = start;
  record.execution.end_time = end;
  record.execution.compute_cost = cost;
  record.execution.succeeded = succeeded;
  return record;
}

ProvenanceRecord ArtifactRecord(ArtifactId id, ArtifactType type,
                                Timestamp created) {
  ProvenanceRecord record;
  record.kind = ProvenanceRecord::Kind::kArtifact;
  record.artifact.id = id;
  record.artifact.type = type;
  record.artifact.create_time = created;
  return record;
}

ProvenanceRecord EventRecord(ExecutionId exec, ArtifactId artifact,
                             EventKind kind, Timestamp time) {
  ProvenanceRecord record;
  record.kind = ProvenanceRecord::Kind::kEvent;
  record.event = {exec, artifact, kind, time};
  return record;
}

constexpr Timestamp kHour = metadata::kSecondsPerHour;

/// Feeds a minimal two-graphlet pipeline: gen -> span -> trainer1 -> m1,
/// then a second trainer over the same span much later.
class SessionFeed : public ::testing::Test {
 protected:
  void FeedPrefix(ProvenanceSession& session) {
    ASSERT_TRUE(session.Ingest(ContextRecord(1, "pipeline_0")).ok());
    ASSERT_TRUE(session
                    .Ingest(ExecRecord(1, ExecutionType::kExampleGen, 0,
                                       1 * kHour))
                    .ok());
    ASSERT_TRUE(
        session
            .Ingest(ArtifactRecord(1, ArtifactType::kExamples, 1 * kHour))
            .ok());
    ASSERT_TRUE(
        session.Ingest(EventRecord(1, 1, EventKind::kOutput, 1 * kHour))
            .ok());
    ASSERT_TRUE(session
                    .Ingest(ExecRecord(2, ExecutionType::kTrainer, 2 * kHour,
                                       3 * kHour, 10.0))
                    .ok());
    ASSERT_TRUE(
        session.Ingest(EventRecord(2, 1, EventKind::kInput, 2 * kHour))
            .ok());
    ASSERT_TRUE(
        session
            .Ingest(ArtifactRecord(2, ArtifactType::kModel, 3 * kHour))
            .ok());
    ASSERT_TRUE(
        session.Ingest(EventRecord(2, 2, EventKind::kOutput, 3 * kHour))
            .ok());
  }
};

TEST_F(SessionFeed, SegmentsHandBuiltFeed) {
  ProvenanceSession session;
  FeedPrefix(session);
  auto result = session.Finish();
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->graphlets.size(), 1u);
  const core::Graphlet& g = result->graphlets[0];
  EXPECT_EQ(g.trainer, 2);
  EXPECT_EQ(g.executions, (std::vector<ExecutionId>{1, 2}));
  EXPECT_EQ(g.artifacts, (std::vector<ArtifactId>{1, 2}));
  EXPECT_EQ(g.input_spans, (std::vector<ArtifactId>{1}));
  EXPECT_EQ(g.model, 2);
  EXPECT_TRUE(session.finished());

  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.records, 8u);
  EXPECT_EQ(stats.contexts, 1u);
  EXPECT_EQ(stats.executions, 2u);
  EXPECT_EQ(stats.artifacts, 2u);
  EXPECT_EQ(stats.events, 3u);
  EXPECT_EQ(stats.segmenter.cells, 1u);
}

TEST_F(SessionFeed, WatermarkSealsAndLateEventsReseal) {
  SessionOptions options;
  options.segmenter.seal_grace_hours = 48.0;
  ProvenanceSession session(options);
  FeedPrefix(session);
  EXPECT_EQ(session.segmenter().TakeSealed().size(), 0u);

  // A second trainer far past the grace window seals the first cell.
  ASSERT_TRUE(session
                  .Ingest(ExecRecord(3, ExecutionType::kTrainer, 100 * kHour,
                                     101 * kHour, 10.0))
                  .ok());
  ASSERT_TRUE(
      session.Ingest(EventRecord(3, 1, EventKind::kInput, 100 * kHour))
          .ok());
  std::vector<size_t> sealed = session.segmenter().TakeSealed();
  ASSERT_EQ(sealed.size(), 1u);
  EXPECT_EQ(session.segmenter().CellTrainer(sealed[0]), 2);
  EXPECT_TRUE(session.segmenter().CellSealed(sealed[0]));
  EXPECT_EQ(session.stats().segmenter.reseals, 0u);

  // A very late evaluator consuming the sealed graphlet's model reopens
  // the cell (descendant growth), counted as a reseal.
  ASSERT_TRUE(session
                  .Ingest(ExecRecord(4, ExecutionType::kEvaluator,
                                     102 * kHour, 103 * kHour))
                  .ok());
  ASSERT_TRUE(
      session.Ingest(EventRecord(4, 2, EventKind::kInput, 102 * kHour))
          .ok());
  EXPECT_EQ(session.stats().segmenter.reseals, 1u);

  auto result = session.Finish();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->graphlets.size(), 2u);
  // The resealed graphlet picked up the late evaluator.
  EXPECT_EQ(result->graphlets[0].executions,
            (std::vector<ExecutionId>{1, 2, 4}));
}

TEST(StreamSessionTest, OutOfOrderExecutionIdIsInvalidArgument) {
  ProvenanceSession session;
  ProvenanceRecord record =
      ExecRecord(5, ExecutionType::kExampleGen, 0, 10);
  common::Status status = session.Ingest(record);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(StreamSessionTest, OutOfOrderArtifactIdIsInvalidArgument) {
  ProvenanceSession session;
  common::Status status =
      session.Ingest(ArtifactRecord(2, ArtifactType::kExamples, 0));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(StreamSessionTest, EventBeforeEndpointsIsInvalidArgument) {
  ProvenanceSession session;
  common::Status status =
      session.Ingest(EventRecord(1, 1, EventKind::kOutput, 0));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(StreamSessionTest, ErrorsAreStickyAndPoisonFinish) {
  ProvenanceSession session;
  ASSERT_FALSE(
      session.Ingest(ArtifactRecord(7, ArtifactType::kExamples, 0)).ok());
  // A record that would otherwise be valid is rejected with the original
  // error.
  common::Status status = session.Ingest(
      ExecRecord(1, ExecutionType::kExampleGen, 0, 10));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(session.Finish().ok());
}

TEST(StreamSessionTest, IngestAfterFinishIsFailedPrecondition) {
  ProvenanceSession session;
  ASSERT_TRUE(session.Finish().ok());
  common::Status status = session.Ingest(
      ExecRecord(1, ExecutionType::kExampleGen, 0, 10));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(session.Finish().ok());  // double Finish also rejected
}

}  // namespace
}  // namespace mlprov::stream
