#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace mlprov::obs {
namespace {

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.Value(), 3.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.Value(), 5.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

TEST(GaugeTest, ConcurrentAddsAreExact) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.Add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.Value(), 1.0 * kThreads * kPerThread);
}

TEST(HistogramMetricTest, BasicStats) {
  HistogramMetric h((HistogramMetric::Options()));
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  for (int i = 1; i <= 100; ++i) h.Record(i);
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_DOUBLE_EQ(h.Sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 100.0);
  // Log-bucket quantiles are approximate; the bucket interpolation must
  // land within a bucket's width of the true value.
  EXPECT_NEAR(h.ApproxQuantile(0.5), 50.0, 15.0);
  EXPECT_GE(h.ApproxQuantile(0.99), h.ApproxQuantile(0.5));
  EXPECT_LE(h.ApproxQuantile(1.0), 100.0);
}

TEST(HistogramMetricTest, ResetClears) {
  HistogramMetric h((HistogramMetric::Options()));
  h.Record(7.0);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
}

TEST(HistogramMetricTest, ToJsonFields) {
  HistogramMetric h((HistogramMetric::Options()));
  h.Record(2.0);
  h.Record(8.0);
  const Json j = h.ToJson();
  ASSERT_TRUE(j.is_object());
  EXPECT_EQ(j.Find("count")->AsInt(), 2);
  EXPECT_DOUBLE_EQ(j.Find("sum")->AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(j.Find("mean")->AsDouble(), 5.0);
  EXPECT_DOUBLE_EQ(j.Find("min")->AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(j.Find("max")->AsDouble(), 8.0);
  ASSERT_NE(j.Find("p50"), nullptr);
  ASSERT_NE(j.Find("p90"), nullptr);
  ASSERT_NE(j.Find("p99"), nullptr);
}

TEST(RegistryTest, SameNameSameInstrument) {
  Registry registry;
  Counter* a = registry.GetCounter("test.counter");
  Counter* b = registry.GetCounter("test.counter");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, registry.GetCounter("test.other"));
  EXPECT_EQ(registry.GetGauge("g"), registry.GetGauge("g"));
  EXPECT_EQ(registry.GetHistogram("h"), registry.GetHistogram("h"));
}

TEST(RegistryTest, ResetKeepsPointersValid) {
  Registry registry;
  Counter* c = registry.GetCounter("c");
  c->Add(10);
  registry.Reset();
  EXPECT_EQ(c->Value(), 0u);
  c->Add(1);  // cached pointer still usable
  EXPECT_EQ(registry.GetCounter("c")->Value(), 1u);
}

TEST(RegistryTest, SnapshotJsonRoundTrip) {
  Registry registry;
  registry.GetCounter("events")->Add(7);
  registry.GetGauge("load")->Set(0.25);
  registry.GetHistogram("lat")->Record(1.5);
  const std::string dumped = registry.Snapshot().Dump(2);

  const auto parsed = Json::Parse(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& snap = *parsed;
  ASSERT_NE(snap.Find("counters"), nullptr);
  EXPECT_EQ(snap.Find("counters")->Find("events")->AsInt(), 7);
  ASSERT_NE(snap.Find("gauges"), nullptr);
  EXPECT_DOUBLE_EQ(snap.Find("gauges")->Find("load")->AsDouble(), 0.25);
  ASSERT_NE(snap.Find("histograms"), nullptr);
  const Json* lat = snap.Find("histograms")->Find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->Find("count")->AsInt(), 1);
}

TEST(RegistryTest, EmptySectionsOmitted) {
  Registry registry;
  EXPECT_EQ(registry.Snapshot().size(), 0u);
  registry.GetCounter("only");
  const Json snap = registry.Snapshot();
  EXPECT_NE(snap.Find("counters"), nullptr);
  EXPECT_EQ(snap.Find("gauges"), nullptr);
  EXPECT_EQ(snap.Find("histograms"), nullptr);
}

TEST(RegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(&Registry::Global(), &Registry::Global());
}

TEST(MacroTest, CounterMacroHitsGlobalRegistry) {
  Counter* c =
      Registry::Global().GetCounter("obs_metrics_test.macro_counter");
  const uint64_t before = c->Value();
  MLPROV_COUNTER_INC("obs_metrics_test.macro_counter");
  MLPROV_COUNTER_ADD("obs_metrics_test.macro_counter", 2);
#ifndef MLPROV_OBS_NOOP
  EXPECT_EQ(c->Value(), before + 3);
#else
  EXPECT_EQ(c->Value(), before);
#endif
}

TEST(JsonTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("nul").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1} trailing").ok());
}

TEST(JsonTest, IntsRoundTripExactly) {
  Json j = Json::Object();
  j.Set("big", static_cast<int64_t>(1) << 53);
  const auto parsed = Json::Parse(j.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("big")->AsInt(), int64_t{1} << 53);
}

TEST(JsonTest, EscapesControlCharacters) {
  Json j = Json::Object();
  j.Set("k", "a\"b\\c\nd");
  const auto parsed = Json::Parse(j.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("k")->AsString(), "a\"b\\c\nd");
}

}  // namespace
}  // namespace mlprov::obs
