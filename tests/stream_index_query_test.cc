/// Session-level property tests for the incremental provenance index:
/// the TraceQuery surface must be byte-identical to TraceView recompute
/// at EVERY ingest prefix of a simulated feed — on plain, fault-injected,
/// and cached corpora, at any thread count, under sharded ingestion,
/// after crash recovery (DurableSession::Open), and after reseals — and
/// the graphlet-membership queries must match batch segmentation.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoints.h"
#include "common/parallel.h"
#include "core/graphlet_analysis.h"
#include "core/provenance_index.h"
#include "core/segmentation.h"
#include "metadata/trace.h"
#include "metadata/trace_validator.h"
#include "simulator/corpus_generator.h"
#include "stream/fingerprint.h"
#include "stream/replay.h"
#include "stream/session.h"
#include "stream/shard_router.h"
#include "stream/supervisor.h"

namespace mlprov::stream {
namespace {

namespace fs = std::filesystem;
using metadata::ArtifactId;
using metadata::ExecutionId;
using metadata::TraceView;

sim::CorpusConfig SmallConfig() {
  sim::CorpusConfig config;
  config.num_pipelines = 3;
  config.seed = 4242;
  config.horizon_days = 40.0;
  return config;
}

sim::CorpusConfig FaultyConfig() {
  sim::CorpusConfig config = SmallConfig();
  config.seed = 4243;
  auto plan = common::FaultPlan::Parse(
      "exec.trainer:transient:0.2,exec.pusher:persistent:0.1,"
      "exec.transform:transient:0.05");
  EXPECT_TRUE(plan.ok());
  config.fault_plan = *plan;
  config.max_retries = 2;
  return config;
}

sim::CorpusConfig CachedConfig() {
  sim::CorpusConfig config = SmallConfig();
  config.seed = 4244;
  config.cache_policy = sim::CachePolicy::kLru;
  config.cache_capacity = 64;
  return config;
}

class ScopedThreads {
 public:
  explicit ScopedThreads(int threads) : saved_(common::GlobalThreads()) {
    common::SetGlobalThreads(threads);
  }
  ~ScopedThreads() { common::SetGlobalThreads(saved_); }

 private:
  int saved_;
};

/// Full sweep: every execution's indexed closures against the TraceView
/// recompute over the session's replicated store.
void ExpectQueriesMatchTraceView(const ProvenanceSession& session) {
  const metadata::MetadataStore& store = session.store();
  ASSERT_TRUE(session.index().InSync());
  TraceView view(&store);
  core::TraceQuery query = session.Query();
  const auto n = static_cast<ExecutionId>(store.num_executions());
  for (ExecutionId exec = 1; exec <= n; ++exec) {
    auto anc = query.AncestorsOf(exec);
    ASSERT_TRUE(anc.ok()) << anc.status();
    EXPECT_EQ(*anc, view.AncestorExecutions(exec)) << "exec " << exec;
    auto desc = query.DescendantsOf(exec);
    ASSERT_TRUE(desc.ok()) << desc.status();
    EXPECT_EQ(*desc, view.DescendantExecutions(exec)) << "exec " << exec;
    auto arts = query.AncestorArtifactsOf(exec);
    ASSERT_TRUE(arts.ok()) << arts.status();
    EXPECT_EQ(*arts, view.AncestorArtifacts(exec)) << "exec " << exec;
  }
  EXPECT_EQ(query.TopologicalOrder(), view.TopologicalOrder());
}

/// One rotating spot check, cheap enough to run after every record.
void SpotCheckPrefix(const ProvenanceSession& session, uint64_t step) {
  const metadata::MetadataStore& store = session.store();
  const size_t n = store.num_executions();
  if (n == 0) return;
  ASSERT_TRUE(session.index().InSync());
  TraceView view(&store);
  core::TraceQuery query = session.Query();
  const auto exec = static_cast<ExecutionId>(step % n + 1);
  auto anc = query.AncestorsOf(exec);
  ASSERT_TRUE(anc.ok()) << anc.status();
  EXPECT_EQ(*anc, view.AncestorExecutions(exec))
      << "prefix " << step << " exec " << exec;
  auto desc = query.DescendantsOf(exec);
  ASSERT_TRUE(desc.ok()) << desc.status();
  EXPECT_EQ(*desc, view.DescendantExecutions(exec))
      << "prefix " << step << " exec " << exec;
}

void ExpectValidationMatches(const ProvenanceSession& session) {
  const metadata::ValidationReport want =
      metadata::TraceValidator().Validate(session.store());
  const metadata::ValidationReport got =
      session.index().ValidationSnapshot();
  ASSERT_EQ(got.issues.size(), want.issues.size());
  for (size_t i = 0; i < want.issues.size(); ++i) {
    EXPECT_EQ(got.issues[i].kind, want.issues[i].kind);
    EXPECT_EQ(got.issues[i].id, want.issues[i].id);
    EXPECT_EQ(got.issues[i].detail, want.issues[i].detail);
  }
  EXPECT_EQ(got.Summary(), want.Summary());
  const core::IssueTallies& tallies = session.index().issue_tallies();
  EXPECT_EQ(tallies.orphan_artifacts, want.orphan_artifacts);
  EXPECT_EQ(tallies.dangling_events, want.dangling_events);
  EXPECT_EQ(tallies.time_inversions, want.time_inversions);
  EXPECT_EQ(tallies.truncated_graphlets, want.truncated_graphlets);
  EXPECT_EQ(tallies.invalid_types, want.invalid_types);
}

TEST(StreamIndexQueryTest, EveryIngestPrefixMatchesTraceViewRecompute) {
  const sim::Corpus corpus = sim::GenerateCorpus(SmallConfig());
  for (const sim::PipelineTrace& trace : corpus.pipelines) {
    ProvenanceSession session;
    TraceRecordSource source(trace);
    const sim::ProvenanceRecord* record = nullptr;
    for (uint64_t i = 0; (record = source.Get(i)) != nullptr; ++i) {
      ASSERT_TRUE(session.Ingest(*record).ok());
      // The index keeps pace record by record: spot-check a rotating
      // execution at every prefix, and sweep everything periodically.
      SpotCheckPrefix(session, i);
      if (i % 64 == 0) {
        ExpectQueriesMatchTraceView(session);
        ExpectValidationMatches(session);
      }
    }
    ExpectQueriesMatchTraceView(session);
    ExpectValidationMatches(session);
    auto result = session.Finish();
    ASSERT_TRUE(result.ok()) << result.status();
  }
}

/// Replays whole traces (fault-injected and cache-hit corpora included)
/// and checks the full sweep plus the graphlet-membership queries
/// against batch segmentation.
void ExpectCorpusQueriesMatch(const sim::Corpus& corpus) {
  for (const sim::PipelineTrace& trace : corpus.pipelines) {
    ProvenanceSession session;
    ASSERT_TRUE(ReplayTrace(trace, session).ok());
    ExpectQueriesMatchTraceView(session);
    ExpectValidationMatches(session);
    auto result = session.Finish();
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(FingerprintGraphlets(result->graphlets),
              FingerprintGraphlets(core::SegmentTrace(trace.store)));

    // GraphletsTouchingSpan == batch membership, artifact by artifact.
    core::TraceQuery query = session.Query();
    const auto num_artifacts =
        static_cast<ArtifactId>(session.store().num_artifacts());
    for (ArtifactId a = 1; a <= num_artifacts; ++a) {
      std::vector<ExecutionId> want;
      for (const core::Graphlet& g : result->graphlets) {
        for (ArtifactId member : g.artifacts) {
          if (member == a) {
            want.push_back(g.trainer);
            break;
          }
        }
      }
      std::sort(want.begin(), want.end());
      auto got = query.GraphletsTouchingSpan(a);
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_EQ(*got, want) << "artifact " << a;
    }
  }
}

TEST(StreamIndexQueryTest, FaultInjectedCorpusMatches) {
  ExpectCorpusQueriesMatch(sim::GenerateCorpus(FaultyConfig()));
}

TEST(StreamIndexQueryTest, CachedCorpusMatches) {
  ExpectCorpusQueriesMatch(sim::GenerateCorpus(CachedConfig()));
}

TEST(StreamIndexQueryTest, QueryResultsIdenticalAcrossThreadCounts) {
  const sim::Corpus corpus = sim::GenerateCorpus(SmallConfig());
  auto fingerprints = [&](int threads) {
    ScopedThreads scoped(threads);
    std::vector<uint64_t> out(corpus.pipelines.size());
    common::ParallelFor(corpus.pipelines.size(), [&](size_t i) {
      ProvenanceSession session;
      (void)ReplayTrace(corpus.pipelines[i], session);
      core::TraceQuery query = session.Query();
      uint64_t hash = 14695981039346656037ull;
      auto fold = [&hash](const std::vector<ExecutionId>& ids) {
        for (ExecutionId id : ids) {
          hash ^= static_cast<uint64_t>(id);
          hash *= 1099511628211ull;
        }
        hash ^= ids.size() + 1;
        hash *= 1099511628211ull;
      };
      const auto n =
          static_cast<ExecutionId>(session.store().num_executions());
      for (ExecutionId exec = 1; exec <= n; ++exec) {
        auto anc = query.AncestorsOf(exec);
        auto desc = query.DescendantsOf(exec);
        if (anc.ok()) fold(*anc);
        if (desc.ok()) fold(*desc);
      }
      fold(query.TopologicalOrder());
      out[i] = hash;
    });
    return out;
  };
  const std::vector<uint64_t> t1 = fingerprints(1);
  EXPECT_EQ(t1, fingerprints(4));
  EXPECT_EQ(t1, fingerprints(8));
}

TEST(StreamIndexQueryTest, ShardedIngestionKeepsIndexedResultsIdentical) {
  // The sharded service's per-pipeline sessions run the index-backed
  // extraction path; the merged output must stay byte-identical to the
  // batch fingerprint at every shard and thread count.
  for (const sim::CorpusConfig& config : {SmallConfig(), FaultyConfig()}) {
    const sim::Corpus corpus = sim::GenerateCorpus(config);
    const core::SegmentedCorpus batch = core::SegmentCorpus(corpus);
    for (int threads : {1, 4}) {
      ScopedThreads scoped(threads);
      for (size_t shards : {1u, 4u, 8u}) {
        ShardRouterOptions options;
        options.shards = shards;
        ShardedProvenanceService service(options);
        auto result = service.IngestCorpus(corpus);
        ASSERT_TRUE(result.ok()) << result.status();
        EXPECT_TRUE(result->FirstError().ok()) << result->FirstError();
        const core::SegmentedCorpus merged = result->ToSegmentedCorpus();
        ASSERT_EQ(merged.pipelines.size(), batch.pipelines.size());
        for (size_t i = 0; i < batch.pipelines.size(); ++i) {
          EXPECT_EQ(FingerprintGraphlets(merged.pipelines[i].graphlets),
                    FingerprintGraphlets(batch.pipelines[i].graphlets))
              << "pipeline " << i << " shards " << shards << " threads "
              << threads;
        }
      }
    }
  }
}

TEST(StreamIndexQueryTest, RecoveredSessionRebuildsTheIndex) {
  const sim::Corpus corpus = sim::GenerateCorpus(SmallConfig());
  const std::string dir =
      (fs::temp_directory_path() / "mlprov_index_recovery").string();
  for (size_t t = 0; t < corpus.pipelines.size(); ++t) {
    fs::remove_all(dir);
    TraceRecordSource source(corpus.pipelines[t]);
    const uint64_t n = source.size();

    // Uninterrupted reference.
    uint64_t expected = 0;
    {
      ProvenanceSession session;
      const sim::ProvenanceRecord* record = nullptr;
      for (uint64_t i = 0; (record = source.Get(i)) != nullptr; ++i) {
        ASSERT_TRUE(session.Ingest(*record).ok());
      }
      auto result = session.Finish();
      ASSERT_TRUE(result.ok()) << result.status();
      expected = FingerprintSessionResult(*result);
    }

    DurableOptions options;
    options.wal.dir = dir;
    options.wal.sync = WalSyncPolicy::kInterval;
    options.wal.sync_interval_records = 8;
    options.checkpoint_interval = 16;

    auto first = DurableSession::Open(options);
    ASSERT_TRUE(first.ok()) << first.status();
    while (first->records() < n / 2) {
      const sim::ProvenanceRecord* record = source.Get(first->records());
      ASSERT_NE(record, nullptr);
      ASSERT_TRUE(first->Ingest(*record).ok());
    }
    ASSERT_TRUE(first->SimulateCrash(first->unsynced_wal_bytes() / 2).ok());

    auto second = DurableSession::Open(options);
    ASSERT_TRUE(second.ok()) << second.status();
    // The restored session's index caught up with the restored store
    // before any extraction ran; queries work immediately.
    ExpectQueriesMatchTraceView(second->session());
    ExpectValidationMatches(second->session());

    const sim::ProvenanceRecord* record = nullptr;
    while ((record = source.Get(second->records())) != nullptr) {
      ASSERT_TRUE(second->Ingest(*record).ok());
    }
    ExpectQueriesMatchTraceView(second->session());
    auto result = second->Finish();
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(FingerprintSessionResult(*result), expected) << "trace " << t;
    fs::remove_all(dir);
  }
}

TEST(StreamIndexQueryTest, ResealsKeepIndexedExtractionIdentical) {
  // A tight seal grace forces cells to seal early and reopen on late
  // post-trainer events; resealed cells re-extract through the index
  // and must still finish byte-identical to batch segmentation.
  const sim::Corpus corpus = sim::GenerateCorpus(FaultyConfig());
  size_t total_reseals = 0;
  for (const sim::PipelineTrace& trace : corpus.pipelines) {
    SessionOptions options;
    options.segmenter.seal_grace_hours = 12.0;
    ProvenanceSession session(options);
    ASSERT_TRUE(ReplayTrace(trace, session).ok());
    total_reseals += session.stats().segmenter.reseals;
    ExpectQueriesMatchTraceView(session);
    auto result = session.Finish();
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(FingerprintGraphlets(result->graphlets),
              FingerprintGraphlets(core::SegmentTrace(trace.store)));
    ExpectQueriesMatchTraceView(session);
  }
  EXPECT_GT(total_reseals, 0u) << "grace too lax to exercise reseals";
}

TEST(StreamIndexQueryTest, DisabledIndexDegradesGracefully) {
  const sim::Corpus corpus = sim::GenerateCorpus(SmallConfig());
  const sim::PipelineTrace& trace = corpus.pipelines[0];
  SessionOptions options;
  options.enable_index = false;
  ProvenanceSession session(options);
  ASSERT_TRUE(ReplayTrace(trace, session).ok());
  // Label queries refuse while the index is behind; segmentation still
  // works (BFS path) and stays byte-identical.
  EXPECT_EQ(session.Query().AncestorsOf(1).status().code(),
            common::StatusCode::kFailedPrecondition);
  auto result = session.Finish();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(FingerprintGraphlets(result->graphlets),
            FingerprintGraphlets(core::SegmentTrace(trace.store)));
  // An on-demand CatchUp turns the query surface on after the fact.
  session.index().CatchUp();
  ExpectQueriesMatchTraceView(session);
}

}  // namespace
}  // namespace mlprov::stream
