#include "simulator/pipeline_simulator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "metadata/serialization.h"
#include "metadata/trace.h"
#include "simulator/corpus_generator.h"

namespace mlprov::sim {
namespace {

using metadata::ArtifactType;
using metadata::ExecutionType;
using metadata::ModelType;

CorpusConfig SmallCorpusConfig() {
  CorpusConfig config;
  config.num_pipelines = 40;
  config.seed = 1234;
  return config;
}

PipelineConfig BasicPipeline(uint64_t seed = 7) {
  PipelineConfig config;
  config.pipeline_id = 1;
  config.seed = seed;
  config.lifespan_days = 20;
  config.triggers_per_day = 2.0;
  config.window_spans = 2;
  config.num_features = 10;
  return config;
}

TEST(PipelineSimulatorTest, ProducesTrainersAndModels) {
  CorpusConfig corpus = SmallCorpusConfig();
  PipelineConfig config = BasicPipeline();
  const PipelineTrace trace = SimulatePipeline(corpus, config, CostModel());
  const auto trainers =
      trace.store.ExecutionsOfType(ExecutionType::kTrainer);
  // ~40 triggers at 2/day over 20 days.
  EXPECT_GT(trainers.size(), 15u);
  EXPECT_LT(trainers.size(), 90u);
  const auto models = trace.store.ArtifactsOfType(ArtifactType::kModel);
  EXPECT_GT(models.size(), 10u);
  EXPECT_LE(models.size(), trainers.size());
}

TEST(PipelineSimulatorTest, DeterministicForSeed) {
  CorpusConfig corpus = SmallCorpusConfig();
  const PipelineTrace a =
      SimulatePipeline(corpus, BasicPipeline(42), CostModel());
  const PipelineTrace b =
      SimulatePipeline(corpus, BasicPipeline(42), CostModel());
  EXPECT_EQ(a.store.num_executions(), b.store.num_executions());
  EXPECT_EQ(a.store.num_artifacts(), b.store.num_artifacts());
  EXPECT_EQ(a.store.num_events(), b.store.num_events());
}

TEST(PipelineSimulatorTest, TraceIsAcyclicAndConnectedish) {
  CorpusConfig corpus = SmallCorpusConfig();
  const PipelineTrace trace =
      SimulatePipeline(corpus, BasicPipeline(3), CostModel());
  metadata::TraceView view(&trace.store);
  // Topological order covers all executions => DAG.
  EXPECT_EQ(view.TopologicalOrder().size(), trace.store.num_executions());
  // Rolling windows tie triggers together: few components relative to
  // the number of executions.
  EXPECT_LT(view.NumConnectedComponents(),
            trace.store.num_executions() / 4 + 2);
}

TEST(PipelineSimulatorTest, RollingWindowShared) {
  CorpusConfig corpus = SmallCorpusConfig();
  PipelineConfig config = BasicPipeline(11);
  config.window_spans = 3;
  config.has_transform = false;  // trainers read spans directly
  const PipelineTrace trace = SimulatePipeline(corpus, config, CostModel());
  const auto trainers =
      trace.store.ExecutionsOfType(ExecutionType::kTrainer);
  ASSERT_GT(trainers.size(), 4u);
  // Most trainers read 3 spans (the first may read fewer fill-in spans).
  size_t full_window = 0;
  for (auto t : trainers) {
    size_t span_inputs = 0;
    for (auto a : trace.store.InputsOf(t)) {
      if (trace.store.GetArtifact(a)->type == ArtifactType::kExamples) {
        ++span_inputs;
      }
    }
    if (span_inputs == 3) ++full_window;
  }
  EXPECT_GT(full_window, trainers.size() / 2);
}

TEST(PipelineSimulatorTest, SpanStatsRecordedForEverySpan) {
  CorpusConfig corpus = SmallCorpusConfig();
  const PipelineTrace trace =
      SimulatePipeline(corpus, BasicPipeline(13), CostModel());
  for (auto span : trace.store.ArtifactsOfType(ArtifactType::kExamples)) {
    ASSERT_TRUE(trace.span_stats.count(span));
    EXPECT_GT(trace.span_stats.at(span).NumFeatures(), 0u);
  }
}

TEST(PipelineSimulatorTest, WarmStartAddsModelInputEdge) {
  CorpusConfig corpus = SmallCorpusConfig();
  PipelineConfig config = BasicPipeline(17);
  config.warm_start = true;
  const PipelineTrace trace = SimulatePipeline(corpus, config, CostModel());
  size_t warm_edges = 0;
  for (auto t : trace.store.ExecutionsOfType(ExecutionType::kTrainer)) {
    for (auto a : trace.store.InputsOf(t)) {
      if (trace.store.GetArtifact(a)->type == ArtifactType::kModel) {
        ++warm_edges;
      }
    }
  }
  EXPECT_GT(warm_edges, 0u);
}

TEST(PipelineSimulatorTest, ParallelTrainersShareInputs) {
  CorpusConfig corpus = SmallCorpusConfig();
  PipelineConfig config = BasicPipeline(19);
  config.parallel_trainers = 3;
  config.has_transform = false;
  const PipelineTrace trace = SimulatePipeline(corpus, config, CostModel());
  const auto trainers =
      trace.store.ExecutionsOfType(ExecutionType::kTrainer);
  EXPECT_GT(trainers.size(), 20u);
  // Consecutive trainer triples share identical span inputs.
  bool found_shared = false;
  for (size_t i = 0; i + 1 < trainers.size() && !found_shared; ++i) {
    found_shared = trace.store.InputsOf(trainers[i]) ==
                   trace.store.InputsOf(trainers[i + 1]);
  }
  EXPECT_TRUE(found_shared);
}

TEST(PipelineSimulatorTest, BlessingOnlyWhenModelValidatorPasses) {
  CorpusConfig corpus = SmallCorpusConfig();
  PipelineConfig config = BasicPipeline(23);
  config.has_evaluator = true;
  config.has_model_validator = true;
  config.lifespan_days = 60;
  const PipelineTrace trace = SimulatePipeline(corpus, config, CostModel());
  const auto blessings =
      trace.store.ArtifactsOfType(ArtifactType::kModelBlessing).size();
  const auto validators =
      trace.store.ExecutionsOfType(ExecutionType::kModelValidator).size();
  EXPECT_GT(validators, 0u);
  EXPECT_LT(blessings, validators);  // some models fail validation
  // Every push follows a blessing.
  const auto pushes =
      trace.store.ArtifactsOfType(ArtifactType::kPushedModel).size();
  EXPECT_LE(pushes, blessings);
}

TEST(PipelineSimulatorTest, PushesAreMinority) {
  CorpusConfig corpus = SmallCorpusConfig();
  PipelineConfig config = BasicPipeline(29);
  config.lifespan_days = 80;
  config.triggers_per_day = 3;
  const PipelineTrace trace = SimulatePipeline(corpus, config, CostModel());
  const double models = static_cast<double>(
      trace.store.ArtifactsOfType(ArtifactType::kModel).size());
  const double pushes = static_cast<double>(
      trace.store.ArtifactsOfType(ArtifactType::kPushedModel).size());
  ASSERT_GT(models, 0);
  EXPECT_LT(pushes / models, 0.7);
}

TEST(PipelineSimulatorTest, ExecutionTimesAreOrdered) {
  CorpusConfig corpus = SmallCorpusConfig();
  const PipelineTrace trace =
      SimulatePipeline(corpus, BasicPipeline(31), CostModel());
  for (const auto& e : trace.store.executions()) {
    EXPECT_LE(e.start_time, e.end_time);
  }
  // Artifacts are created no earlier than their producer starts.
  for (const auto& ev : trace.store.events()) {
    if (ev.kind != metadata::EventKind::kOutput) continue;
    const auto exec = trace.store.GetExecution(ev.execution);
    const auto artifact = trace.store.GetArtifact(ev.artifact);
    EXPECT_GE(artifact->create_time, exec->start_time);
  }
}

TEST(PipelineSimulatorTest, TrainerFailuresLeaveNoModel) {
  CorpusConfig corpus = SmallCorpusConfig();
  corpus.trainer_failure_prob = 0.5;  // force frequent failures
  PipelineConfig config = BasicPipeline(37);
  config.lifespan_days = 40;
  const PipelineTrace trace = SimulatePipeline(corpus, config, CostModel());
  size_t failed = 0;
  for (auto t : trace.store.ExecutionsOfType(ExecutionType::kTrainer)) {
    const auto exec = trace.store.GetExecution(t);
    if (!exec->succeeded) {
      ++failed;
      EXPECT_TRUE(trace.store.OutputsOf(t).empty());
    }
  }
  EXPECT_GT(failed, 0u);
}

TEST(CorpusGeneratorTest, EveryPipelineQualifiesMostly) {
  Corpus corpus = GenerateCorpus(SmallCorpusConfig());
  EXPECT_EQ(corpus.pipelines.size(), 40u);
  size_t with_push = 0;
  for (const auto& p : corpus.pipelines) {
    if (!p.store.ArtifactsOfType(ArtifactType::kPushedModel).empty()) {
      ++with_push;
    }
  }
  // Section 2.2 filter: nearly all pipelines deployed at least one model.
  EXPECT_GE(with_push, 36u);
  EXPECT_GT(corpus.TotalTrainerRuns(), 100u);
  EXPECT_GT(corpus.TotalExecutions(), corpus.TotalTrainerRuns());
  EXPECT_GT(corpus.TotalArtifacts(), 0u);
}

TEST(CorpusGeneratorTest, DeterministicForSeed) {
  const Corpus a = GenerateCorpus(SmallCorpusConfig());
  const Corpus b = GenerateCorpus(SmallCorpusConfig());
  ASSERT_EQ(a.pipelines.size(), b.pipelines.size());
  EXPECT_EQ(a.TotalExecutions(), b.TotalExecutions());
  EXPECT_EQ(a.TotalArtifacts(), b.TotalArtifacts());
}

TEST(CorpusGeneratorTest, SmallerCorpusIsStrictPrefixOfLarger) {
  // Per-pipeline derived RNG streams decouple pipelines from each other:
  // pipeline i's trace depends only on (seed, i), so growing the corpus
  // must not reshuffle the pipelines that were already there.
  CorpusConfig small = SmallCorpusConfig();
  small.num_pipelines = 10;
  CorpusConfig large = SmallCorpusConfig();
  large.num_pipelines = 16;
  const Corpus a = GenerateCorpus(small);
  const Corpus b = GenerateCorpus(large);
  ASSERT_EQ(a.pipelines.size(), 10u);
  ASSERT_EQ(b.pipelines.size(), 16u);
  for (size_t i = 0; i < a.pipelines.size(); ++i) {
    EXPECT_EQ(metadata::SerializeStore(a.pipelines[i].store),
              metadata::SerializeStore(b.pipelines[i].store))
        << "pipeline " << i << " changed when the corpus grew";
  }
}

TEST(CorpusGeneratorTest, PipelineConfigMatchesDerivedStream) {
  // The corpus generator samples pipeline i's config from
  // Rng::Derive(seed, i, attempt). Re-deriving the stream by hand must
  // reproduce the stored config; if the generator ever goes back to one
  // shared stream (the pre-fix coupling bug), no attempt will match.
  const CorpusConfig config = SmallCorpusConfig();
  const Corpus corpus = GenerateCorpus(config);
  for (const size_t pipeline : {size_t{0}, size_t{7}, size_t{39}}) {
    bool matched = false;
    for (int attempt = 0; attempt < 8 && !matched; ++attempt) {
      common::Rng rng = common::Rng::Derive(config.seed, pipeline,
                                            static_cast<uint64_t>(attempt));
      const PipelineConfig pc = SamplePipelineConfig(
          config, static_cast<int64_t>(pipeline), rng);
      matched = pc.seed == corpus.pipelines[pipeline].config.seed &&
                pc.model_type == corpus.pipelines[pipeline].config.model_type;
    }
    EXPECT_TRUE(matched) << "pipeline " << pipeline
                         << " config not reproducible from derived stream";
  }
}

TEST(CorpusGeneratorTest, ModelMixRoughlyMatchesConfig) {
  CorpusConfig config = SmallCorpusConfig();
  config.num_pipelines = 150;
  const Corpus corpus = GenerateCorpus(config);
  size_t dnn = 0;
  for (const auto& p : corpus.pipelines) {
    if (p.config.model_type == ModelType::kDnn) ++dnn;
  }
  const double frac = static_cast<double>(dnn) /
                      static_cast<double>(corpus.pipelines.size());
  EXPECT_NEAR(frac, 0.64, 0.12);
}

TEST(SamplePipelineConfigTest, FieldsWithinBounds) {
  CorpusConfig corpus;
  common::Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const PipelineConfig c = SamplePipelineConfig(corpus, i, rng);
    EXPECT_GE(c.lifespan_days, 1.0);
    EXPECT_LE(c.lifespan_days, corpus.horizon_days);
    EXPECT_GT(c.triggers_per_day, 0.0);
    EXPECT_LE(c.triggers_per_day, corpus.max_triggers_per_day);
    EXPECT_GE(c.num_features, 3);
    EXPECT_LE(c.num_features, corpus.max_features);
    EXPECT_GE(c.categorical_fraction, 0.05);
    EXPECT_LE(c.categorical_fraction, 0.95);
    EXPECT_GE(c.window_spans, 1);
    EXPECT_GE(c.parallel_trainers, 1);
    EXPECT_LE(c.parallel_trainers, 4);
    // Structural implications.
    if (c.has_schema_gen) EXPECT_TRUE(c.has_statistics_gen);
    if (c.has_model_validator) EXPECT_TRUE(c.has_evaluator);
    if (c.has_infra_validator) EXPECT_TRUE(c.has_model_validator);
    if (!c.has_transform) EXPECT_TRUE(c.analyzers.empty());
  }
}

TEST(CostModelTest, TrainerCostVariesByModelTypeAndHealth) {
  CostModel cost_model;
  PipelineConfig dnn = BasicPipeline();
  dnn.model_type = ModelType::kDnn;
  PipelineConfig linear = BasicPipeline();
  linear.model_type = ModelType::kLinear;
  common::Rng rng(3);
  double dnn_sum = 0, linear_sum = 0, unhealthy_sum = 0;
  for (int i = 0; i < 300; ++i) {
    dnn_sum += cost_model.Cost(ExecutionType::kTrainer, dnn, false, rng);
    linear_sum +=
        cost_model.Cost(ExecutionType::kTrainer, linear, false, rng);
    unhealthy_sum +=
        cost_model.Cost(ExecutionType::kTrainer, dnn, true, rng);
  }
  EXPECT_GT(dnn_sum, linear_sum * 1.5);
  EXPECT_GT(unhealthy_sum, dnn_sum * 1.2);
}

TEST(CostModelTest, AllOperatorsHavePositiveCost) {
  CostModel cost_model;
  PipelineConfig config = BasicPipeline();
  common::Rng rng(9);
  for (int t = 0; t < metadata::kNumExecutionTypes; ++t) {
    EXPECT_GT(cost_model.Cost(static_cast<ExecutionType>(t), config, false,
                              rng),
              0.0);
  }
}

}  // namespace
}  // namespace mlprov::sim
