// Fatal-signal flight dump: DumpOnSignal must write every live
// recorder's record ring to the pre-opened crash fd using only
// async-signal-safe primitives — and actually fire from a real signal
// handler in a dying process.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"

namespace mlprov::obs {
namespace {

namespace fs = std::filesystem;

class ObsFlightCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("flight_crash_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    SetFlightRecorderDir("");
    fs::remove_all(dir_);
  }

  std::string ReadCrashLog() const {
    std::ifstream in(dir_ / "flight_crash.log");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  fs::path dir_;
};

TEST_F(ObsFlightCrashTest, DumpOnSignalWritesTheRecordRing) {
  SetFlightRecorderDir(dir_.string());
  FlightRecorder recorder("crash probe!", {.capacity = 4});
  // Six notes through a capacity-4 ring: the dump keeps the last four.
  for (int i = 0; i < 6; ++i) {
    recorder.NoteRecord('E', 100 + i, -50 + i);
  }

  FlightRecorder::DumpOnSignal(SIGSEGV);

  const std::string text = ReadCrashLog();
  EXPECT_NE(text.find("signal 11"), std::string::npos) << text;
  // Name sanitized into the fixed crash buffer.
  EXPECT_NE(text.find("recorder crash_probe_ records_noted=6"),
            std::string::npos)
      << text;
  // Oldest surviving entry is seq 2; seqs 0/1 were evicted.
  EXPECT_EQ(text.find("  0 E"), std::string::npos) << text;
  EXPECT_NE(text.find("  2 E id=102 time=-48\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("  5 E id=105 time=-45\n"), std::string::npos)
      << text;
}

TEST_F(ObsFlightCrashTest, NoConfiguredDirIsANoOp) {
  SetFlightRecorderDir("");
  FlightRecorder recorder("quiet");
  recorder.NoteRecord('C', 1, 0);
  FlightRecorder::DumpOnSignal(SIGBUS);  // must not crash or write
  EXPECT_FALSE(fs::exists(dir_ / "flight_crash.log"));
}

TEST_F(ObsFlightCrashTest, DestroyedRecordersLeaveTheDump) {
  SetFlightRecorderDir(dir_.string());
  {
    FlightRecorder gone("gone");
    gone.NoteRecord('A', 7, 7);
  }
  FlightRecorder alive("alive");
  alive.NoteRecord('V', 9, 9);

  FlightRecorder::DumpOnSignal(SIGABRT);

  const std::string text = ReadCrashLog();
  EXPECT_EQ(text.find("recorder gone"), std::string::npos) << text;
  EXPECT_NE(text.find("recorder alive"), std::string::npos) << text;
}

TEST_F(ObsFlightCrashTest, FatalSignalProducesACrashDump) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: arm the handler, record some work, die by SIGABRT. Exit
    // paths below use _exit so gtest state is never double-flushed.
    FlightRecorder::InstallCrashHandler();
    SetFlightRecorderDir(dir_.string());
    FlightRecorder recorder("doomed");
    for (int i = 0; i < 3; ++i) recorder.NoteRecord('E', i, i);
    abort();
    _exit(97);  // unreachable
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << status;
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  const std::string text = ReadCrashLog();
  EXPECT_NE(text.find("signal 6"), std::string::npos) << text;
  EXPECT_NE(text.find("recorder doomed records_noted=3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("  2 E id=2 time=2\n"), std::string::npos) << text;
}

}  // namespace
}  // namespace mlprov::obs
