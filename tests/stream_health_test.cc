#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/status.h"
#include "metadata/types.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "simulator/provenance_sink.h"
#include "stream/session.h"

namespace mlprov::stream {
namespace {

using metadata::ArtifactId;
using metadata::ArtifactType;
using metadata::EventKind;
using metadata::ExecutionId;
using metadata::ExecutionType;
using metadata::Timestamp;
using sim::ProvenanceRecord;

constexpr Timestamp kHour = metadata::kSecondsPerHour;

ProvenanceRecord ContextRecord(metadata::ContextId id,
                               const std::string& name) {
  ProvenanceRecord record;
  record.kind = ProvenanceRecord::Kind::kContext;
  record.context.id = id;
  record.context.name = name;
  return record;
}

ProvenanceRecord ExecRecord(ExecutionId id, ExecutionType type,
                            Timestamp start, Timestamp end,
                            bool succeeded = true) {
  ProvenanceRecord record;
  record.kind = ProvenanceRecord::Kind::kExecution;
  record.execution.id = id;
  record.execution.type = type;
  record.execution.start_time = start;
  record.execution.end_time = end;
  record.execution.compute_cost = 1.0;
  record.execution.succeeded = succeeded;
  return record;
}

ProvenanceRecord ArtifactRecord(ArtifactId id, ArtifactType type,
                                Timestamp created) {
  ProvenanceRecord record;
  record.kind = ProvenanceRecord::Kind::kArtifact;
  record.artifact.id = id;
  record.artifact.type = type;
  record.artifact.create_time = created;
  return record;
}

ProvenanceRecord EventRecord(ExecutionId exec, ArtifactId artifact,
                             EventKind kind, Timestamp time) {
  ProvenanceRecord record;
  record.kind = ProvenanceRecord::Kind::kEvent;
  record.event = {exec, artifact, kind, time};
  return record;
}

/// Two-trainer feed: trainer 2 ends at 10h, trainer 4 at 90h, and a
/// trailing artifact advances the watermark to 100h — past trainer 2's
/// 24h grace (sealed) but inside trainer 4's (open, 10h of lag).
void FeedTwoTrainers(ProvenanceSession& session) {
  ASSERT_TRUE(session.Ingest(ContextRecord(1, "pipeline_h")).ok());
  ASSERT_TRUE(session
                  .Ingest(ExecRecord(1, ExecutionType::kExampleGen, 0,
                                     1 * kHour))
                  .ok());
  ASSERT_TRUE(
      session.Ingest(ArtifactRecord(1, ArtifactType::kExamples, 1 * kHour))
          .ok());
  ASSERT_TRUE(
      session.Ingest(EventRecord(1, 1, EventKind::kOutput, 1 * kHour))
          .ok());
  ASSERT_TRUE(session
                  .Ingest(ExecRecord(2, ExecutionType::kTrainer, 2 * kHour,
                                     10 * kHour))
                  .ok());
  ASSERT_TRUE(
      session.Ingest(EventRecord(2, 1, EventKind::kInput, 2 * kHour)).ok());
  ASSERT_TRUE(session
                  .Ingest(ArtifactRecord(2, ArtifactType::kModel,
                                         10 * kHour))
                  .ok());
  ASSERT_TRUE(
      session.Ingest(EventRecord(2, 2, EventKind::kOutput, 10 * kHour))
          .ok());
  ASSERT_TRUE(session
                  .Ingest(ExecRecord(3, ExecutionType::kExampleGen,
                                     80 * kHour, 81 * kHour))
                  .ok());
  ASSERT_TRUE(session
                  .Ingest(ArtifactRecord(3, ArtifactType::kExamples,
                                         81 * kHour))
                  .ok());
  ASSERT_TRUE(
      session.Ingest(EventRecord(3, 3, EventKind::kOutput, 81 * kHour))
          .ok());
  ASSERT_TRUE(session
                  .Ingest(ExecRecord(4, ExecutionType::kTrainer, 82 * kHour,
                                     90 * kHour))
                  .ok());
  ASSERT_TRUE(
      session.Ingest(EventRecord(4, 3, EventKind::kInput, 82 * kHour))
          .ok());
  ASSERT_TRUE(session
                  .Ingest(ArtifactRecord(4, ArtifactType::kModel,
                                         100 * kHour))
                  .ok());
  ASSERT_TRUE(
      session.Ingest(EventRecord(4, 4, EventKind::kOutput, 100 * kHour))
          .ok());
}

SessionOptions HealthOptions(const std::string& name) {
  SessionOptions options;
  options.name = name;
  options.segmenter.seal_grace_hours = 24.0;
  return options;
}

TEST(StreamHealthTest, HealthTracksFeedMidStream) {
  ProvenanceSession session(HealthOptions("mid"));
  FeedTwoTrainers(session);

  const SessionHealth health = session.Health();
  EXPECT_EQ(health.name, "mid");
  EXPECT_EQ(health.records, 15u);
  EXPECT_EQ(health.watermark, 100 * kHour);
  EXPECT_EQ(health.cells, 2u);
  EXPECT_EQ(health.sealed, 1u);
  EXPECT_EQ(health.open_cells, 1u);
  // Trainer 4 ended at 90h, watermark is 100h: ten hours of seal lag.
  EXPECT_DOUBLE_EQ(health.seal_lag_hours, 10.0);
  // No scorer: nothing to decide.
  EXPECT_EQ(health.decisions, 0u);
  EXPECT_EQ(health.pending_decisions, 0u);
  EXPECT_FALSE(health.poisoned);
  EXPECT_FALSE(health.finished);

  // ToJson carries every field.
  const obs::Json j = health.ToJson();
  EXPECT_EQ(j.Find("name")->AsString(), "mid");
  EXPECT_EQ(j.Find("records")->AsInt(), 15);
  EXPECT_DOUBLE_EQ(j.Find("seal_lag_hours")->AsDouble(), 10.0);
  EXPECT_EQ(j.Find("open_cells")->AsInt(), 1);
  EXPECT_FALSE(j.Find("poisoned")->AsBool(true));
}

TEST(StreamHealthTest, HealthAfterFinish) {
  ProvenanceSession session(HealthOptions("fin"));
  FeedTwoTrainers(session);
  ASSERT_TRUE(session.Finish().ok());

  const SessionHealth health = session.Health();
  EXPECT_TRUE(health.finished);
  EXPECT_EQ(health.cells, 2u);
}

TEST(StreamHealthTest, PublishHealthExportsGauges) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  ProvenanceSession session(HealthOptions("ht1"));
  FeedTwoTrainers(session);
  session.PublishHealth();

  obs::Registry& registry = obs::Registry::Global();
  EXPECT_DOUBLE_EQ(registry.GetGauge("session.ht1.records")->Value(),
                   15.0);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("session.ht1.seal_lag_hours")->Value(), 10.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("session.ht1.open_cells")->Value(),
                   1.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("session.ht1.poisoned")->Value(),
                   0.0);

  // Republishing after more progress updates in place (same gauges).
  ASSERT_TRUE(session.Finish().ok());
  session.PublishHealth();
  EXPECT_DOUBLE_EQ(registry.GetGauge("session.ht1.records")->Value(),
                   15.0);
}

TEST(StreamHealthTest, UnnamedSessionPublishesNothing) {
  SessionOptions options;
  options.segmenter.seal_grace_hours = 24.0;
  ProvenanceSession session(options);
  FeedTwoTrainers(session);
  session.PublishHealth();  // no name: must not mint "session.." gauges

  const obs::Json snapshot = obs::Registry::Global().Snapshot();
  const obs::Json* gauges = snapshot.Find("gauges");
  if (gauges != nullptr) {
    for (const auto& [name, value] : gauges->members()) {
      EXPECT_NE(name.substr(0, 9), "session..") << name;
    }
  }
}

TEST(StreamHealthTest, PoisonedSessionDumpsFlightFile) {
  const std::string dir = ::testing::TempDir();
  obs::SetFlightRecorderDir(dir);

  SessionOptions options = HealthOptions("poison_test");
  options.flight_capacity = 8;
  ProvenanceSession session(options);
  ASSERT_TRUE(session.Ingest(ContextRecord(1, "pipeline_p")).ok());
  ASSERT_TRUE(session
                  .Ingest(ExecRecord(1, ExecutionType::kExampleGen, 0,
                                     1 * kHour))
                  .ok());
  // Feed-order violation: execution id 5 when 2 is expected.
  const common::Status poisoned =
      session.Ingest(ExecRecord(5, ExecutionType::kTrainer, 2 * kHour,
                                3 * kHour));
  EXPECT_FALSE(poisoned.ok());
  EXPECT_TRUE(session.Health().poisoned);
  if (!obs::kMetricsEnabled) {
    obs::SetFlightRecorderDir("");
    GTEST_SKIP() << "flight persistence compiled out (MLPROV_OBS_NOOP)";
  }
  EXPECT_TRUE(session.flight_recorder().failed());
  obs::SetFlightRecorderDir("");

  // The dump happened at poisoning time and captures the violating
  // record as the error entry (plus the record tail up to it).
  const std::string path = dir + "/flight_poison_test.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = obs::Json::Parse(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("session")->AsString(), "poison_test");
  EXPECT_TRUE(parsed->Find("failed")->AsBool(false));
  const obs::Json* entries = parsed->Find("entries");
  ASSERT_GE(entries->size(), 1u);
  const obs::Json& error = entries->at(entries->size() - 1);
  EXPECT_EQ(error.Find("kind")->AsString(), "error");
  const obs::Json* context = error.Find("detail")->Find("context");
  ASSERT_NE(context, nullptr);
  EXPECT_EQ(context->Find("kind")->AsString(), "E");
  EXPECT_EQ(context->Find("id")->AsInt(), 5);
  // The record ring ends with the violating record itself.
  const obs::Json* records = parsed->Find("records");
  ASSERT_GE(records->size(), 1u);
  const obs::Json& last = records->at(records->size() - 1);
  EXPECT_EQ(last.Find("kind")->AsString(), "E");
  EXPECT_EQ(last.Find("id")->AsInt(), 5);

  std::remove(path.c_str());
}

TEST(StreamHealthTest, PendingDecisionsRequireScorer) {
  // Without a scorer, cells never become decisions and none are pending;
  // the bench's scoring sessions cover the scorer-armed path.
  ProvenanceSession session(HealthOptions("nopend"));
  FeedTwoTrainers(session);
  const SessionHealth health = session.Health();
  EXPECT_EQ(health.pending_decisions, 0u);
}

}  // namespace
}  // namespace mlprov::stream
