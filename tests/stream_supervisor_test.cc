#include "stream/supervisor.h"

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoints.h"
#include "metadata/types.h"
#include "simulator/corpus_generator.h"
#include "stream/fingerprint.h"

namespace mlprov::stream {
namespace {

namespace fs = std::filesystem;

sim::CorpusConfig SmallConfig() {
  sim::CorpusConfig config;
  config.num_pipelines = 2;
  config.seed = 5150;
  config.horizon_days = 40.0;
  return config;
}

class StreamSupervisorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new sim::Corpus(sim::GenerateCorpus(SmallConfig()));
    ProvenanceSession session;
    TraceRecordSource source(corpus_->pipelines[0]);
    const sim::ProvenanceRecord* record = nullptr;
    for (uint64_t i = 0; (record = source.Get(i)) != nullptr; ++i) {
      ASSERT_TRUE(session.Ingest(*record).ok());
    }
    auto result = session.Finish();
    ASSERT_TRUE(result.ok()) << result.status();
    expected_ = FingerprintSessionResult(*result);
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }

  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("mlprov_sup_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  SupervisorOptions BaseOptions() const {
    SupervisorOptions options;
    options.durable.wal.dir = dir_;
    options.durable.wal.sync = WalSyncPolicy::kInterval;
    options.durable.wal.sync_interval_records = 8;
    options.durable.checkpoint_interval = 16;
    options.seed = 99;
    return options;
  }

  static sim::Corpus* corpus_;
  static uint64_t expected_;
  std::string dir_;
};

sim::Corpus* StreamSupervisorTest::corpus_ = nullptr;
uint64_t StreamSupervisorTest::expected_ = 0;

TEST_F(StreamSupervisorTest, CompletesFirstTryWithoutFaults) {
  TraceRecordSource source(corpus_->pipelines[0]);
  SessionSupervisor supervisor(BaseOptions());
  SupervisorReport report = supervisor.Run(source);
  ASSERT_TRUE(report.status.ok()) << report.status;
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.attempts, 1);
  EXPECT_EQ(report.crashes, 0);
  EXPECT_EQ(report.replayed_records, 0u);
  EXPECT_FALSE(report.wal_quarantined);
  ASSERT_TRUE(report.result.has_value());
  EXPECT_EQ(FingerprintSessionResult(*report.result), expected_);
}

TEST_F(StreamSupervisorTest, RecoversThroughInjectedCrashes) {
  auto plan = common::FaultPlan::Parse("session.crash:transient:0.01:3");
  ASSERT_TRUE(plan.ok()) << plan.status();
  SupervisorOptions options = BaseOptions();
  options.faults = &*plan;
  std::vector<double> slept;
  options.sleep_fn = [&](double seconds) { slept.push_back(seconds); };

  TraceRecordSource source(corpus_->pipelines[0]);
  SessionSupervisor supervisor(options);
  SupervisorReport report = supervisor.Run(source);
  ASSERT_TRUE(report.status.ok()) << report.status;
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.crashes, 3);
  EXPECT_EQ(report.attempts, 4);
  EXPECT_EQ(report.backoff_schedule.size(), 3u);
  EXPECT_EQ(slept, report.backoff_schedule);
  EXPECT_GT(report.replayed_records, 0u);
  ASSERT_TRUE(report.result.has_value());
  // Crash-recovered result is byte-identical to the uninterrupted run.
  EXPECT_EQ(FingerprintSessionResult(*report.result), expected_);

  // Post-mortems were persisted for each crash.
  size_t dumps = 0;
  for (const auto& file :
       fs::directory_iterator(fs::path(dir_) / "postmortem")) {
    (void)file;
    ++dumps;
  }
  EXPECT_GT(dumps, 0u);
}

TEST_F(StreamSupervisorTest, CrashRunsAreDeterministicPerSeed) {
  auto plan = common::FaultPlan::Parse("session.crash:transient:0.01:2");
  ASSERT_TRUE(plan.ok());
  auto run_once = [&](const std::string& dir, uint64_t seed) {
    fs::remove_all(dir);
    SupervisorOptions options = BaseOptions();
    options.durable.wal.dir = dir;
    options.faults = &*plan;
    options.seed = seed;
    TraceRecordSource source(corpus_->pipelines[0]);
    SessionSupervisor supervisor(options);
    SupervisorReport report = supervisor.Run(source);
    fs::remove_all(dir);
    return report;
  };

  SupervisorReport a = run_once(dir_ + "_a", 7);
  SupervisorReport b = run_once(dir_ + "_b", 7);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.replayed_records, b.replayed_records);
  EXPECT_EQ(a.backoff_schedule, b.backoff_schedule);
  ASSERT_TRUE(a.result.has_value());
  ASSERT_TRUE(b.result.has_value());
  EXPECT_EQ(FingerprintSessionResult(*a.result),
            FingerprintSessionResult(*b.result));
}

TEST_F(StreamSupervisorTest, BackoffIsJitteredExponential) {
  SupervisorOptions options = BaseOptions();
  options.backoff_initial_seconds = 0.1;
  options.backoff_multiplier = 2.0;
  options.backoff_jitter = 0.5;
  SessionSupervisor supervisor(options);
  for (int restart = 0; restart < 6; ++restart) {
    const double base = 0.1 * std::pow(2.0, restart);
    const double delay = supervisor.BackoffSeconds(restart);
    EXPECT_GE(delay, base * 0.75) << restart;
    EXPECT_LT(delay, base * 1.25) << restart;
    // Deterministic: same options, same delay.
    EXPECT_EQ(delay, SessionSupervisor(options).BackoffSeconds(restart));
  }

  // Jitter desynchronizes different seeds (retry-storm avoidance).
  SupervisorOptions other = options;
  other.seed = options.seed + 1;
  EXPECT_NE(SessionSupervisor(other).BackoffSeconds(3),
            supervisor.BackoffSeconds(3));

  // jitter = 0 disables: the schedule is exactly exponential.
  SupervisorOptions plain = options;
  plain.backoff_jitter = 0.0;
  EXPECT_DOUBLE_EQ(SessionSupervisor(plain).BackoffSeconds(3), 0.8);
}

/// A source that substitutes one contract-violating record: an event
/// referencing nodes that never arrive poisons the session sticky.
class PoisoningSource : public RecordSource {
 public:
  PoisoningSource(const sim::PipelineTrace& trace, uint64_t poison_at)
      : inner_(trace), poison_at_(poison_at) {
    bad_.kind = sim::ProvenanceRecord::Kind::kEvent;
    bad_.event.execution = 999'999'999;
    bad_.event.artifact = 999'999'999;
    bad_.event.kind = metadata::EventKind::kInput;
    bad_.event.time = 0;
  }

  uint64_t size() const override { return inner_.size(); }
  const sim::ProvenanceRecord* Get(uint64_t index) override {
    if (index == poison_at_) return &bad_;
    return inner_.Get(index);
  }

 private:
  TraceRecordSource inner_;
  uint64_t poison_at_;
  sim::ProvenanceRecord bad_;
};

TEST_F(StreamSupervisorTest, PoisonedFeedExhaustsBudgetAndQuarantines) {
  SupervisorOptions options = BaseOptions();
  options.max_restarts = 2;
  options.durable.wal.sync = WalSyncPolicy::kEvery;  // poison hits disk
  PoisoningSource source(corpus_->pipelines[0], 24);
  SessionSupervisor supervisor(options);
  SupervisorReport report = supervisor.Run(source);

  EXPECT_FALSE(report.status.ok());
  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.attempts, 3);
  // The journaled poison re-poisons replay deterministically: the first
  // attempt poisons live, every later attempt dies recovering.
  EXPECT_EQ(report.poisonings, 1);
  EXPECT_TRUE(report.wal_quarantined);
  EXPECT_GT(report.quarantined_files, 0u);
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "quarantine"));
  EXPECT_FALSE(report.result.has_value());

  // A fresh supervisor over the quarantined directory starts clean and
  // completes (the poisoned log is out of the way).
  TraceRecordSource clean(corpus_->pipelines[0]);
  SessionSupervisor retry(BaseOptions());
  SupervisorReport second = retry.Run(clean);
  ASSERT_TRUE(second.status.ok()) << second.status;
  ASSERT_TRUE(second.result.has_value());
  EXPECT_EQ(FingerprintSessionResult(*second.result), expected_);
}

TEST_F(StreamSupervisorTest, ResumesAcrossSupervisorGenerations) {
  // A crash-killed supervisor (max_fires exhausts its budget) leaves a
  // durable WAL; the next supervisor generation picks up where it died
  // instead of starting over.
  auto plan = common::FaultPlan::Parse("session.crash:transient:0.02:3");
  ASSERT_TRUE(plan.ok());
  SupervisorOptions options = BaseOptions();
  options.max_restarts = 1;  // 2 attempts < 3 injected crashes: dies
  options.faults = &*plan;
  TraceRecordSource source(corpus_->pipelines[0]);
  {
    SessionSupervisor first(options);
    SupervisorReport report = first.Run(source);
    EXPECT_FALSE(report.completed);
    // Budget exhausted: evidence quarantined.
    EXPECT_TRUE(report.wal_quarantined);
  }
  // Generation two: clean state, same source, completes identically.
  SessionSupervisor second(BaseOptions());
  SupervisorReport report = second.Run(source);
  ASSERT_TRUE(report.status.ok()) << report.status;
  ASSERT_TRUE(report.result.has_value());
  EXPECT_EQ(FingerprintSessionResult(*report.result), expected_);
}

}  // namespace
}  // namespace mlprov::stream
