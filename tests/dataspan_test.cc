#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataspan/feature_stats.h"
#include "dataspan/span_stats.h"

namespace mlprov::dataspan {
namespace {

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(FeatureStatsTest, NumericalDistributionNormalizes) {
  FeatureStats f;
  f.kind = FeatureKind::kNumerical;
  f.bins = {1, 2, 3, 4, 0, 0, 0, 0, 0, 0};
  const auto d = f.ToDistribution();
  ASSERT_EQ(d.size(), 10u);
  EXPECT_NEAR(Sum(d), 1.0, 1e-12);
  EXPECT_NEAR(d[0], 0.1, 1e-12);
  EXPECT_NEAR(d[3], 0.4, 1e-12);
}

TEST(FeatureStatsTest, NumericalRebinning) {
  FeatureStats f;
  f.kind = FeatureKind::kNumerical;
  f.bins = {1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  const auto d = f.ToDistribution(5);
  ASSERT_EQ(d.size(), 5u);
  for (double x : d) EXPECT_NEAR(x, 0.2, 1e-12);
}

TEST(FeatureStatsTest, EmptyNumericalIsAllZero) {
  FeatureStats f;
  f.kind = FeatureKind::kNumerical;
  EXPECT_TRUE(f.Empty());
  const auto d = f.ToDistribution();
  EXPECT_NEAR(Sum(d), 0.0, 1e-12);
}

TEST(FeatureStatsTest, NegativeBinCountsClampedToZero) {
  FeatureStats f;
  f.kind = FeatureKind::kNumerical;
  f.bins = {-5, 1, 0, 0, 0, 0, 0, 0, 0, 0};
  const auto d = f.ToDistribution();
  EXPECT_NEAR(d[0], 0.0, 1e-12);
  EXPECT_NEAR(d[1], 1.0, 1e-12);
}

TEST(FeatureStatsTest, CategoricalDistributionSumsToOne) {
  FeatureStats f;
  f.kind = FeatureKind::kCategorical;
  f.unique_terms = 1000;
  f.total_count = 10000;
  f.top_term_counts = {3000, 1500, 800, 500, 300, 200, 150, 100, 80, 50};
  const auto d = f.ToDistribution();
  ASSERT_EQ(d.size(), 10u);
  EXPECT_NEAR(Sum(d), 1.0, 1e-9);
  // With 1000 unique terms the top-10 terms all fall in the first bin.
  EXPECT_GT(d[0], 0.65);
  // Tail mass is uniform over the remaining bins.
  for (size_t i = 2; i < 9; ++i) EXPECT_NEAR(d[i], d[i + 1], 1e-9);
}

TEST(FeatureStatsTest, CategoricalSortsTermCountsDescending) {
  FeatureStats f1, f2;
  f1.kind = f2.kind = FeatureKind::kCategorical;
  f1.unique_terms = f2.unique_terms = 100;
  f1.total_count = f2.total_count = 1000;
  f1.top_term_counts = {500, 100, 50, 40, 30, 20, 10, 5, 3, 2};
  f2.top_term_counts = {2, 3, 5, 10, 20, 30, 40, 50, 100, 500};
  // Same multiset of counts => identical distribution (Appendix B sorts).
  const auto d1 = f1.ToDistribution();
  const auto d2 = f2.ToDistribution();
  for (size_t i = 0; i < d1.size(); ++i) EXPECT_NEAR(d1[i], d2[i], 1e-12);
}

TEST(FeatureStatsTest, CategoricalSmallDomainWithoutTail) {
  FeatureStats f;
  f.kind = FeatureKind::kCategorical;
  f.unique_terms = 4;  // fewer than the 10 recorded slots
  f.total_count = 100;
  f.top_term_counts = {40, 30, 20, 10, 0, 0, 0, 0, 0, 0};
  const auto d = f.ToDistribution(4);
  EXPECT_NEAR(Sum(d), 1.0, 1e-9);
  EXPECT_NEAR(d[0], 0.4, 1e-9);
  EXPECT_NEAR(d[3], 0.1, 1e-9);
}

TEST(FeatureStatsTest, CategoricalEmpty) {
  FeatureStats f;
  f.kind = FeatureKind::kCategorical;
  EXPECT_TRUE(f.Empty());
  EXPECT_NEAR(Sum(f.ToDistribution()), 0.0, 1e-12);
}

TEST(SpanStatsTest, FeatureKindCounts) {
  SpanStats span;
  FeatureStats num, cat;
  num.kind = FeatureKind::kNumerical;
  cat.kind = FeatureKind::kCategorical;
  span.features = {num, cat, cat};
  EXPECT_EQ(span.NumFeatures(), 3u);
  EXPECT_EQ(span.NumCategorical(), 2u);
  EXPECT_EQ(span.NumNumerical(), 1u);
}

class SpanStatsGeneratorTest : public ::testing::Test {
 protected:
  SchemaConfig config_;
};

TEST_F(SpanStatsGeneratorTest, EmitsConfiguredFeatureCount) {
  config_.num_features = 17;
  SpanStatsGenerator gen(config_, common::Rng(5));
  const SpanStats s = gen.NextSpan();
  EXPECT_EQ(s.NumFeatures(), 17u);
  EXPECT_EQ(s.span_number, 0);
  EXPECT_EQ(gen.NextSpan().span_number, 1);
  EXPECT_EQ(gen.spans_emitted(), 2);
}

TEST_F(SpanStatsGeneratorTest, CategoricalFractionRoughlyMatches) {
  config_.num_features = 400;
  config_.categorical_fraction = 0.53;
  SpanStatsGenerator gen(config_, common::Rng(7));
  const SpanStats s = gen.NextSpan();
  const double frac = static_cast<double>(s.NumCategorical()) /
                      static_cast<double>(s.NumFeatures());
  EXPECT_NEAR(frac, 0.53, 0.08);
}

TEST_F(SpanStatsGeneratorTest, FeatureNamesStableAcrossSpans) {
  SpanStatsGenerator gen(config_, common::Rng(9));
  const SpanStats a = gen.NextSpan();
  const SpanStats b = gen.NextSpan();
  ASSERT_EQ(a.NumFeatures(), b.NumFeatures());
  for (size_t i = 0; i < a.features.size(); ++i) {
    EXPECT_EQ(a.features[i].name, b.features[i].name);
    EXPECT_EQ(a.features[i].kind, b.features[i].kind);
  }
}

TEST_F(SpanStatsGeneratorTest, ConsecutiveSpansDriftSlowly) {
  config_.num_features = 30;
  SpanStatsGenerator gen(config_, common::Rng(11));
  const SpanStats a = gen.NextSpan();
  const SpanStats b = gen.NextSpan();
  // Distributions should be close but not necessarily identical.
  double total_l1 = 0.0;
  for (size_t i = 0; i < a.features.size(); ++i) {
    const auto da = a.features[i].ToDistribution();
    const auto db = b.features[i].ToDistribution();
    for (size_t j = 0; j < da.size(); ++j) {
      total_l1 += std::abs(da[j] - db[j]);
    }
  }
  EXPECT_LT(total_l1 / static_cast<double>(a.features.size()), 0.25);
}

TEST_F(SpanStatsGeneratorTest, ShockIncreasesDrift) {
  config_.num_features = 30;
  auto drift_between = [&](bool shock) {
    SpanStatsGenerator gen(config_, common::Rng(13));
    const SpanStats a = gen.NextSpan();
    if (shock) gen.Shock(2.0);
    const SpanStats b = gen.NextSpan();
    double total = 0.0;
    for (size_t i = 0; i < a.features.size(); ++i) {
      const auto da = a.features[i].ToDistribution();
      const auto db = b.features[i].ToDistribution();
      for (size_t j = 0; j < da.size(); ++j) {
        total += std::abs(da[j] - db[j]);
      }
    }
    return total;
  };
  EXPECT_GT(drift_between(true), drift_between(false) * 1.5);
}

TEST_F(SpanStatsGeneratorTest, CategoricalDomainsArePlausible) {
  config_.num_features = 200;
  config_.log10_domain_mean = 7.0;
  SpanStatsGenerator gen(config_, common::Rng(17));
  const SpanStats s = gen.NextSpan();
  double log_sum = 0.0;
  int n = 0;
  for (const auto& f : s.features) {
    if (f.kind != FeatureKind::kCategorical) continue;
    EXPECT_GT(f.unique_terms, 0);
    EXPECT_GT(f.total_count, 0);
    log_sum += std::log10(static_cast<double>(f.unique_terms));
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_NEAR(log_sum / n, 7.0, 0.6);
}

TEST_F(SpanStatsGeneratorTest, DeterministicForSameSeed) {
  SpanStatsGenerator g1(config_, common::Rng(21));
  SpanStatsGenerator g2(config_, common::Rng(21));
  const SpanStats a = g1.NextSpan();
  const SpanStats b = g2.NextSpan();
  ASSERT_EQ(a.NumFeatures(), b.NumFeatures());
  for (size_t i = 0; i < a.features.size(); ++i) {
    const auto da = a.features[i].ToDistribution();
    const auto db = b.features[i].ToDistribution();
    for (size_t j = 0; j < da.size(); ++j) {
      EXPECT_DOUBLE_EQ(da[j], db[j]);
    }
  }
}

}  // namespace
}  // namespace mlprov::dataspan
