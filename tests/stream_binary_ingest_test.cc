// Cross-format equivalence of the ingest paths (ISSUE 7): feeding a
// serialized corpus through the text path (DeserializeStore +
// ReplayStore) and through the zero-copy binary path (BinaryStoreCursor
// + Ingest(RecordRef)) must produce byte-identical analyses —
// segmentation fingerprints, replicated stores, and scoring decisions —
// at any thread count.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/segmentation.h"
#include "core/waste_mitigation.h"
#include "metadata/binary_serialization.h"
#include "metadata/serialization.h"
#include "simulator/binary_sink.h"
#include "simulator/corpus_generator.h"
#include "simulator/provenance_sink.h"
#include "stream/fingerprint.h"
#include "stream/online_scorer.h"
#include "stream/replay.h"
#include "stream/session.h"

namespace mlprov::stream {
namespace {

sim::CorpusConfig SmallConfig() {
  sim::CorpusConfig config;
  config.num_pipelines = 10;
  config.seed = 4242;
  config.horizon_days = 45.0;
  return config;
}

/// Feeds a binary corpus buffer through the zero-copy path.
common::Status IngestBinary(const std::string& binary,
                            ProvenanceSession& session) {
  auto cursor = metadata::BinaryStoreCursor::Open(binary);
  if (!cursor.ok()) return cursor.status();
  metadata::RecordRef record;
  while (cursor->Next(&record)) {
    MLPROV_RETURN_IF_ERROR(session.Ingest(record));
  }
  return cursor->status();
}

/// Feeds a text corpus buffer through the materialize-then-replay path.
common::Status IngestText(const std::string& text,
                          ProvenanceSession& session) {
  auto store = metadata::DeserializeStore(text);
  if (!store.ok()) return store.status();
  return ReplayStore(*store, session);
}

TEST(StreamBinaryIngestTest, TextAndBinaryFeedsAreByteIdentical) {
  const sim::Corpus corpus = sim::GenerateCorpus(SmallConfig());
  for (const sim::PipelineTrace& trace : corpus.pipelines) {
    const std::string text = metadata::SerializeStore(trace.store);
    const std::string binary = metadata::SerializeStoreBinary(trace.store);

    ProvenanceSession text_session;
    ASSERT_TRUE(IngestText(text, text_session).ok());
    ProvenanceSession binary_session;
    ASSERT_TRUE(IngestBinary(binary, binary_session).ok());

    // Replicated stores are byte-identical (and match the original).
    EXPECT_EQ(metadata::SerializeStore(text_session.store()),
              metadata::SerializeStore(binary_session.store()));
    EXPECT_EQ(metadata::SerializeStore(binary_session.store()), text);
    EXPECT_EQ(text_session.stats().records,
              binary_session.stats().records);

    auto text_result = text_session.Finish();
    auto binary_result = binary_session.Finish();
    ASSERT_TRUE(text_result.ok());
    ASSERT_TRUE(binary_result.ok());
    EXPECT_EQ(FingerprintGraphlets(text_result->graphlets),
              FingerprintGraphlets(binary_result->graphlets));
    EXPECT_EQ(FingerprintGraphlets(binary_result->graphlets),
              FingerprintGraphlets(core::SegmentTrace(trace.store)));
  }
}

TEST(StreamBinaryIngestTest, ScoringDecisionsMatchAcrossFormats) {
  const sim::Corpus corpus = sim::GenerateCorpus(SmallConfig());
  auto segmented = core::SegmentCorpus(corpus);
  auto dataset = core::BuildWasteDataset(corpus, segmented);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  auto scorer = OnlineScorer::Train(*dataset);
  ASSERT_TRUE(scorer.ok()) << scorer.status();

  for (const sim::PipelineTrace& trace : corpus.pipelines) {
    const std::string text = metadata::SerializeStore(trace.store);
    const std::string binary = metadata::SerializeStoreBinary(trace.store);

    SessionOptions options;
    options.scorer = &*scorer;
    ProvenanceSession text_session(options);
    ASSERT_TRUE(IngestText(text, text_session).ok());
    ProvenanceSession binary_session(options);
    ASSERT_TRUE(IngestBinary(binary, binary_session).ok());

    auto text_result = text_session.Finish();
    auto binary_result = binary_session.Finish();
    ASSERT_TRUE(text_result.ok());
    ASSERT_TRUE(binary_result.ok());
    ASSERT_EQ(text_result->decisions.size(),
              binary_result->decisions.size());
    for (size_t i = 0; i < text_result->decisions.size(); ++i) {
      const ScoreDecision& a = text_result->decisions[i];
      const ScoreDecision& b = binary_result->decisions[i];
      EXPECT_EQ(a.trainer, b.trainer);
      EXPECT_EQ(a.abort, b.abort);
      EXPECT_EQ(a.score, b.score);  // bit-exact, not approximate
      EXPECT_EQ(a.threshold, b.threshold);
      EXPECT_EQ(a.variant_scores, b.variant_scores);
      EXPECT_EQ(a.variant_scored, b.variant_scored);
      EXPECT_EQ(a.avoided_hours, b.avoided_hours);
      EXPECT_EQ(a.lost_push, b.lost_push);
    }
    EXPECT_EQ(text_result->waste.aborts, binary_result->waste.aborts);
    EXPECT_EQ(text_result->waste.avoided_hours,
              binary_result->waste.avoided_hours);
  }
}

TEST(StreamBinaryIngestTest, BinaryFeedIsIdenticalAcrossThreadCounts) {
  const sim::Corpus corpus = sim::GenerateCorpus(SmallConfig());
  std::vector<std::string> binaries;
  binaries.reserve(corpus.pipelines.size());
  for (const sim::PipelineTrace& trace : corpus.pipelines) {
    binaries.push_back(metadata::SerializeStoreBinary(trace.store));
  }
  auto fingerprints = [&](int threads) {
    common::SetGlobalThreads(threads);
    std::vector<uint64_t> out(binaries.size());
    common::ParallelFor(binaries.size(), [&](size_t i) {
      ProvenanceSession session;
      (void)IngestBinary(binaries[i], session);
      auto result = session.Finish();
      out[i] = result.ok() ? FingerprintGraphlets(result->graphlets) : 0;
    });
    return out;
  };
  const std::vector<uint64_t> t1 = fingerprints(1);
  EXPECT_EQ(t1, fingerprints(4));
  EXPECT_EQ(t1, fingerprints(8));
  common::SetGlobalThreads(1);
  // And the parallel results match the text path serially.
  for (size_t i = 0; i < corpus.pipelines.size(); ++i) {
    ProvenanceSession session;
    ASSERT_TRUE(
        IngestText(metadata::SerializeStore(corpus.pipelines[i].store),
                   session)
            .ok());
    auto result = session.Finish();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(t1[i], FingerprintGraphlets(result->graphlets));
  }
}

TEST(StreamBinaryIngestTest, BinarySinkEmitsCanonicalFraming) {
  // A live feed through BinaryTraceSink must produce the exact bytes
  // SerializeStoreBinary produces over the store a session replicates
  // from the same feed.
  const sim::Corpus corpus = sim::GenerateCorpus(SmallConfig());
  for (const sim::PipelineTrace& trace : corpus.pipelines) {
    sim::BinaryTraceSink sink;
    sim::ProvenanceFeeder feeder(&sink);
    feeder.Finish(trace);

    ProvenanceSession session;
    ASSERT_TRUE(ReplayTrace(trace, session).ok());

    EXPECT_EQ(sink.records(), session.stats().records);
    EXPECT_EQ(sink.Finalize(),
              metadata::SerializeStoreBinary(session.store()));
  }
}

TEST(StreamBinaryIngestTest, FinalizeIsAnIdempotentSnapshot) {
  // Finalize never mutates the sink: consecutive calls are
  // byte-identical, and ingesting after a Finalize yields the same bytes
  // a never-finalized sink produces over the full feed.
  const sim::Corpus corpus = sim::GenerateCorpus(SmallConfig());
  const sim::PipelineTrace& trace = corpus.pipelines[0];

  sim::BinaryTraceSink sink;
  sim::ProvenanceFeeder feeder(&sink);
  feeder.Flush(trace);  // partial feed (whatever is emittable mid-run)
  const std::string mid_a = sink.Finalize();
  const std::string mid_b = sink.Finalize();
  EXPECT_EQ(mid_a, mid_b);

  // The mid-feed snapshot is itself a valid MLPB buffer.
  ProvenanceSession partial;
  EXPECT_TRUE(IngestBinary(mid_a, partial).ok());

  feeder.Finish(trace);  // keep ingesting after Finalize
  const std::string full = sink.Finalize();
  EXPECT_EQ(full, sink.Finalize());

  sim::BinaryTraceSink fresh;
  sim::ProvenanceFeeder refeed(&fresh);
  refeed.Finish(trace);
  EXPECT_EQ(full, fresh.Finalize());
  EXPECT_EQ(full, metadata::SerializeStoreBinary(trace.store));
}

TEST(StreamBinaryIngestTest, LenientSalvageOfAnyTruncatedPrefixIsSafe) {
  // The lenient-reader property (the WAL salvage contract mirrors it,
  // frame-exactly, in stream_wal_test): for *every* truncation point of
  // a binary buffer, lenient deserialization must succeed, salvage at
  // most what the intact buffer holds, never fabricate nodes the strict
  // reader would not produce, and degrade to the byte-identical strict
  // result at full length.
  const sim::Corpus corpus = sim::GenerateCorpus(SmallConfig());
  const std::string binary =
      metadata::SerializeStoreBinary(corpus.pipelines[0].store);
  auto full = metadata::DeserializeStoreBinary(binary);
  ASSERT_TRUE(full.ok()) << full.status();

  // A torn magic/version header is not salvageable — it must fail
  // cleanly (no crash), not fabricate an empty store.
  const size_t header = sizeof(metadata::kBinaryStoreMagic) + 1;
  for (size_t len = 0; len < header; ++len) {
    metadata::LenientStats stats;
    EXPECT_FALSE(metadata::DeserializeStoreBinaryLenient(
                     binary.substr(0, len), &stats)
                     .ok())
        << "len " << len;
  }

  const size_t step = binary.size() > 4096 ? binary.size() / 600 + 1 : 1;
  for (size_t len = header; len <= binary.size(); len += step) {
    metadata::LenientStats stats;
    auto salvaged =
        metadata::DeserializeStoreBinaryLenient(binary.substr(0, len),
                                                &stats);
    ASSERT_TRUE(salvaged.ok()) << "len " << len << ": "
                               << salvaged.status();
    EXPECT_LE(salvaged->num_executions(), full->num_executions());
    EXPECT_LE(salvaged->num_artifacts(), full->num_artifacts());
    EXPECT_LE(salvaged->num_contexts(), full->num_contexts());
    EXPECT_LE(salvaged->num_events(), full->num_events());
    // Salvaged nodes are the intact buffer's nodes (ids are dense, so
    // position identifies them): timestamps must match field-for-field.
    for (size_t i = 0; i < salvaged->num_executions(); ++i) {
      EXPECT_EQ(salvaged->executions()[i].start_time,
                full->executions()[i].start_time)
          << "len " << len << " exec " << i;
    }
    for (size_t i = 0; i < salvaged->num_artifacts(); ++i) {
      EXPECT_EQ(salvaged->artifacts()[i].create_time,
                full->artifacts()[i].create_time)
          << "len " << len << " artifact " << i;
    }
  }

  metadata::LenientStats stats;
  auto whole = metadata::DeserializeStoreBinaryLenient(binary, &stats);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(stats.malformed_lines, 0u);
  EXPECT_EQ(metadata::SerializeStore(*whole), metadata::SerializeStore(*full));
}

TEST(StreamBinaryIngestTest, OutOfOrderRecordPoisonsSession) {
  ProvenanceSession session;
  metadata::RecordRef record;
  record.kind = metadata::RecordRef::Kind::kArtifact;
  record.id = 7;  // expected 1
  const common::Status status = session.Ingest(record);
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(session.status().ok());
  // Sticky: a well-formed record is rejected with the same error.
  record.id = 1;
  EXPECT_FALSE(session.Ingest(record).ok());
  EXPECT_FALSE(session.Finish().ok());
}

TEST(StreamBinaryIngestTest, CursorCorruptionPoisonsNotCrashes) {
  const sim::Corpus corpus = sim::GenerateCorpus(SmallConfig());
  const std::string binary =
      metadata::SerializeStoreBinary(corpus.pipelines[0].store);
  // Flip one byte somewhere in the body and drive the full ingest; the
  // cursor either opens and later fails sticky, or refuses to open.
  for (size_t pos = 5; pos < binary.size(); pos += 11) {
    std::string mutant = binary;
    mutant[pos] = static_cast<char>(mutant[pos] ^ 0x55);
    ProvenanceSession session;
    (void)IngestBinary(mutant, session);
  }
}

}  // namespace
}  // namespace mlprov::stream
