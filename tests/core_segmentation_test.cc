#include "core/segmentation.h"

#include <gtest/gtest.h>

#include "metadata/metadata_store.h"
#include "simulator/corpus_generator.h"
#include "simulator/pipeline_simulator.h"

namespace mlprov::core {
namespace {

using metadata::ArtifactId;
using metadata::ArtifactType;
using metadata::EventKind;
using metadata::ExecutionId;
using metadata::ExecutionType;
using metadata::MetadataStore;

/// Builds the Figure 8-style trace:
///   gen1 -> s1, gen2 -> s2, gen3 -> s3
///   stats1 on s1, stats2 on s2, stats3 on s3 (data analysis, rule b)
///   trainer1 reads {s1, s2} -> m1; pusher1 pushes m1
///   trainer2 reads {s2, s3} and warm-starts from m1 -> m2 (not pushed)
struct Fig8Trace {
  MetadataStore store;
  ExecutionId gen[3], stats[3], trainer1, trainer2, pusher1;
  ArtifactId span[3], stat_art[3], m1, m2, pushed1;

  Fig8Trace() {
    auto exec = [&](ExecutionType t, metadata::Timestamp start,
                    double cost = 1.0) {
      metadata::Execution e;
      e.type = t;
      e.start_time = start;
      e.end_time = start + 5;
      e.compute_cost = cost;
      return store.PutExecution(e);
    };
    auto artifact = [&](ArtifactType t, metadata::Timestamp created,
                        int64_t span_number = -1) {
      metadata::Artifact a;
      a.type = t;
      a.create_time = created;
      if (span_number >= 0) a.properties["span"] = span_number;
      return store.PutArtifact(a);
    };
    auto link = [&](ExecutionId e, ArtifactId a, EventKind k) {
      ASSERT_TRUE(store.PutEvent({e, a, k, 0}).ok());
    };
    for (int i = 0; i < 3; ++i) {
      gen[i] = exec(ExecutionType::kExampleGen, i * 10);
      span[i] = artifact(ArtifactType::kExamples, i * 10 + 5, i);
      link(gen[i], span[i], EventKind::kOutput);
      stats[i] = exec(ExecutionType::kStatisticsGen, i * 10 + 6);
      link(stats[i], span[i], EventKind::kInput);
      stat_art[i] =
          artifact(ArtifactType::kExampleStatistics, i * 10 + 8);
      link(stats[i], stat_art[i], EventKind::kOutput);
    }
    trainer1 = exec(ExecutionType::kTrainer, 40, /*cost=*/10.0);
    link(trainer1, span[0], EventKind::kInput);
    link(trainer1, span[1], EventKind::kInput);
    m1 = artifact(ArtifactType::kModel, 45);
    link(trainer1, m1, EventKind::kOutput);
    pusher1 = exec(ExecutionType::kPusher, 50, /*cost=*/0.5);
    link(pusher1, m1, EventKind::kInput);
    pushed1 = artifact(ArtifactType::kPushedModel, 55);
    link(pusher1, pushed1, EventKind::kOutput);

    trainer2 = exec(ExecutionType::kTrainer, 60, /*cost=*/12.0);
    link(trainer2, span[1], EventKind::kInput);
    link(trainer2, span[2], EventKind::kInput);
    link(trainer2, m1, EventKind::kInput);  // warm start
    m2 = artifact(ArtifactType::kModel, 65);
    link(trainer2, m2, EventKind::kOutput);
  }
};

template <typename C, typename V>
bool Has(const C& container, V value) {
  return std::find(container.begin(), container.end(), value) !=
         container.end();
}

TEST(SegmentationTest, OneGraphletPerTrainerInChronologicalOrder) {
  Fig8Trace t;
  const auto graphlets = SegmentTrace(t.store);
  ASSERT_EQ(graphlets.size(), 2u);
  EXPECT_EQ(graphlets[0].trainer, t.trainer1);
  EXPECT_EQ(graphlets[1].trainer, t.trainer2);
}

TEST(SegmentationTest, RuleAIncludesAncestors) {
  Fig8Trace t;
  const auto g = SegmentTrace(t.store);
  EXPECT_TRUE(Has(g[0].executions, t.gen[0]));
  EXPECT_TRUE(Has(g[0].executions, t.gen[1]));
  EXPECT_FALSE(Has(g[0].executions, t.gen[2]));
  EXPECT_TRUE(Has(g[0].artifacts, t.span[0]));
  EXPECT_TRUE(Has(g[0].artifacts, t.span[1]));
}

TEST(SegmentationTest, RuleBIncludesDataAnalysisOnSpans) {
  Fig8Trace t;
  const auto g = SegmentTrace(t.store);
  EXPECT_TRUE(Has(g[0].executions, t.stats[0]));
  EXPECT_TRUE(Has(g[0].executions, t.stats[1]));
  EXPECT_FALSE(Has(g[0].executions, t.stats[2]));
  EXPECT_TRUE(Has(g[0].artifacts, t.stat_art[0]));
  EXPECT_TRUE(Has(g[1].executions, t.stats[1]));
  EXPECT_TRUE(Has(g[1].executions, t.stats[2]));
  EXPECT_FALSE(Has(g[1].executions, t.stats[0]));
}

TEST(SegmentationTest, RuleCIncludesDescendantsAndPushFlag) {
  Fig8Trace t;
  const auto g = SegmentTrace(t.store);
  EXPECT_TRUE(Has(g[0].executions, t.pusher1));
  EXPECT_TRUE(Has(g[0].artifacts, t.pushed1));
  EXPECT_TRUE(g[0].pushed);
  EXPECT_FALSE(g[1].pushed);
}

TEST(SegmentationTest, WarmStartEdgeIsACut) {
  Fig8Trace t;
  const auto g = SegmentTrace(t.store);
  // Graphlet 2 includes m1 as an input artifact, but not trainer1 or the
  // pusher downstream of m1 (Figure 8).
  EXPECT_TRUE(g[1].warm_start);
  EXPECT_TRUE(Has(g[1].artifacts, t.m1));
  EXPECT_FALSE(Has(g[1].executions, t.trainer1));
  EXPECT_FALSE(Has(g[1].executions, t.pusher1));
  // And graphlet 1 does not extend into trainer2.
  EXPECT_FALSE(Has(g[0].executions, t.trainer2));
  EXPECT_FALSE(Has(g[0].artifacts, t.m2));
}

TEST(SegmentationTest, InputSpansOrderedBySpanNumber) {
  Fig8Trace t;
  const auto g = SegmentTrace(t.store);
  EXPECT_EQ(g[0].input_spans,
            (std::vector<ArtifactId>{t.span[0], t.span[1]}));
  EXPECT_EQ(g[1].input_spans,
            (std::vector<ArtifactId>{t.span[1], t.span[2]}));
}

TEST(SegmentationTest, CostSplit) {
  Fig8Trace t;
  const auto g = SegmentTrace(t.store);
  EXPECT_DOUBLE_EQ(g[0].trainer_cost, 10.0);
  // pre = gen0 + gen1 + stats0 + stats1 = 4 executions of cost 1.
  EXPECT_DOUBLE_EQ(g[0].pre_trainer_cost, 4.0);
  EXPECT_DOUBLE_EQ(g[0].post_trainer_cost, 0.5);  // pusher
  EXPECT_DOUBLE_EQ(g[0].TotalCost(), 14.5);
  // Graphlet 2 has no post-trainer ops.
  EXPECT_DOUBLE_EQ(g[1].post_trainer_cost, 0.0);
}

TEST(SegmentationTest, ModelAndMetadataFields) {
  Fig8Trace t;
  const auto g = SegmentTrace(t.store);
  EXPECT_EQ(g[0].model, t.m1);
  EXPECT_EQ(g[1].model, t.m2);
  EXPECT_TRUE(g[0].trainer_succeeded);
  EXPECT_GT(g[0].DurationSeconds(), 0);
  EXPECT_GT(g[0].NumNodes(), 8u);
}

TEST(SegmentationTest, EmptyStoreYieldsNoGraphlets) {
  MetadataStore store;
  EXPECT_TRUE(SegmentTrace(store).empty());
}

TEST(SegmentationTest, DatalogMatchesFastPathOnFig8) {
  Fig8Trace t;
  const auto fast = SegmentTrace(t.store);
  const auto datalog = SegmentTraceDatalog(t.store);
  ASSERT_EQ(fast.size(), datalog.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].trainer, datalog[i].trainer);
    EXPECT_EQ(fast[i].executions, datalog[i].executions) << "graphlet " << i;
    EXPECT_EQ(fast[i].artifacts, datalog[i].artifacts) << "graphlet " << i;
    EXPECT_EQ(fast[i].input_spans, datalog[i].input_spans);
    EXPECT_EQ(fast[i].pushed, datalog[i].pushed);
    EXPECT_DOUBLE_EQ(fast[i].TotalCost(), datalog[i].TotalCost());
  }
}

TEST(SegmentationTest, DatalogMatchesFastPathOnSimulatedTrace) {
  sim::CorpusConfig corpus_config;
  corpus_config.num_pipelines = 1;
  common::Rng rng(99);
  sim::PipelineConfig config =
      sim::SamplePipelineConfig(corpus_config, 0, rng);
  config.lifespan_days = 4;
  config.triggers_per_day = 2;
  config.warm_start = true;  // exercise the ancestor cut
  const sim::PipelineTrace trace =
      sim::SimulatePipeline(corpus_config, config, sim::CostModel());
  const auto fast = SegmentTrace(trace.store);
  const auto datalog = SegmentTraceDatalog(trace.store);
  ASSERT_EQ(fast.size(), datalog.size());
  ASSERT_FALSE(fast.empty());
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].executions, datalog[i].executions) << "graphlet " << i;
    EXPECT_EQ(fast[i].artifacts, datalog[i].artifacts) << "graphlet " << i;
  }
}

TEST(SegmentationTest, SimulatedTraceGraphletsAreBounded) {
  sim::CorpusConfig corpus_config;
  common::Rng rng(7);
  sim::PipelineConfig config =
      sim::SamplePipelineConfig(corpus_config, 0, rng);
  config.lifespan_days = 30;
  config.triggers_per_day = 4;
  config.warm_start = false;
  const sim::PipelineTrace trace =
      sim::SimulatePipeline(corpus_config, config, sim::CostModel());
  const auto graphlets = SegmentTrace(trace.store);
  ASSERT_GT(graphlets.size(), 10u);
  for (const Graphlet& g : graphlets) {
    EXPECT_GT(g.NumNodes(), 2u);
    EXPECT_LT(g.NumNodes(), 400u);  // bounded complexity (Section 4.1)
    EXPECT_FALSE(g.input_spans.empty());
    EXPECT_GT(g.TotalCost(), 0.0);
  }
  // The trainer count matches the graphlet count.
  EXPECT_EQ(graphlets.size(),
            trace.store.ExecutionsOfType(ExecutionType::kTrainer).size());
}

}  // namespace
}  // namespace mlprov::core
