#include "obs/report.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/json.h"

namespace mlprov::obs {
namespace {

/// Serializes the report and parses it back through the strict parser,
/// so every schema assertion below holds for the bytes a consumer of
/// BENCH_*.json actually reads, not for the in-memory Json tree.
Json RoundTrip(const BenchReport& report) {
  const auto parsed = Json::Parse(report.ToJson().Dump(2));
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.ok() ? *parsed : Json();
}

TEST(ObsReportTest, DefaultTimelineHealthAndCacheObjects) {
  BenchReport report("roundtrip_defaults");
  const Json back = RoundTrip(report);

  // Reports without a sampler or sessions still carry schema-stable
  // placeholder objects, so downstream tooling never branches on key
  // presence.
  const Json* timeline = back.Find("timeline");
  ASSERT_NE(timeline, nullptr);
  ASSERT_TRUE(timeline->is_object());
  EXPECT_FALSE(timeline->Find("enabled")->AsBool(true));
  EXPECT_EQ(timeline->Find("samples")->AsInt(-1), 0);

  const Json* health = back.Find("health");
  ASSERT_NE(health, nullptr);
  ASSERT_TRUE(health->is_object());
  EXPECT_EQ(health->Find("sessions")->AsInt(-1), 0);

  const Json* cache = back.Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->Find("policy")->AsString(), "off");
  EXPECT_EQ(cache->Find("hits")->AsInt(-1), 0);
}

TEST(ObsReportTest, TimelineObjectRoundTrips) {
  BenchReport report("roundtrip_timeline");

  Json sample = Json::Object();
  sample.Set("seq", static_cast<int64_t>(0));
  sample.Set("reason", "interval");
  sample.Set("ts_us", static_cast<int64_t>(1234));
  sample.Set("records", static_cast<int64_t>(4096));
  Json counters = Json::Object();
  counters.Set("stream.records", static_cast<int64_t>(4096));
  sample.Set("counters", std::move(counters));
  Json gauges = Json::Object();
  gauges.Set("session.p0.seal_lag_hours", 12.5);
  sample.Set("gauges", std::move(gauges));

  Json timeline = Json::Object();
  timeline.Set("enabled", true);
  timeline.Set("interval_records", static_cast<int64_t>(4096));
  timeline.Set("capacity", static_cast<int64_t>(64));
  timeline.Set("evicted", static_cast<int64_t>(0));
  Json samples = Json::Array();
  samples.Push(std::move(sample));
  timeline.Set("samples", std::move(samples));
  report.SetTimeline(std::move(timeline));

  const Json back = RoundTrip(report);
  const Json* parsed = back.Find("timeline");
  ASSERT_NE(parsed, nullptr);
  EXPECT_TRUE(parsed->Find("enabled")->AsBool(false));
  EXPECT_EQ(parsed->Find("interval_records")->AsInt(), 4096);
  const Json* parsed_samples = parsed->Find("samples");
  ASSERT_NE(parsed_samples, nullptr);
  ASSERT_EQ(parsed_samples->size(), 1u);
  const Json& s = parsed_samples->at(0);
  EXPECT_EQ(s.Find("reason")->AsString(), "interval");
  EXPECT_EQ(s.Find("records")->AsInt(), 4096);
  EXPECT_EQ(s.Find("counters")->Find("stream.records")->AsInt(), 4096);
  EXPECT_DOUBLE_EQ(
      s.Find("gauges")->Find("session.p0.seal_lag_hours")->AsDouble(),
      12.5);
}

TEST(ObsReportTest, HealthObjectRoundTrips) {
  BenchReport report("roundtrip_health");

  Json health = Json::Object();
  health.Set("sessions", static_cast<int64_t>(24));
  health.Set("records", static_cast<int64_t>(120000));
  health.Set("cells", static_cast<int64_t>(980));
  health.Set("sealed", static_cast<int64_t>(950));
  health.Set("open_cells", static_cast<int64_t>(30));
  health.Set("reseals", static_cast<int64_t>(17));
  health.Set("decisions", static_cast<int64_t>(940));
  health.Set("pending_decisions", static_cast<int64_t>(40));
  health.Set("poisoned", static_cast<int64_t>(0));
  health.Set("max_seal_lag_hours", 72.25);
  report.SetHealth(std::move(health));

  const Json back = RoundTrip(report);
  const Json* parsed = back.Find("health");
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->Find("sessions")->AsInt(), 24);
  EXPECT_EQ(parsed->Find("records")->AsInt(), 120000);
  EXPECT_EQ(parsed->Find("open_cells")->AsInt(), 30);
  EXPECT_EQ(parsed->Find("pending_decisions")->AsInt(), 40);
  EXPECT_DOUBLE_EQ(parsed->Find("max_seal_lag_hours")->AsDouble(), 72.25);
}

TEST(ObsReportTest, CacheObjectRoundTripsWithTallies) {
  BenchReport report("roundtrip_cache");
  report.SetCacheStats("unbounded", /*hits=*/321, /*misses=*/123,
                       /*evictions=*/7, /*saved_hours=*/4567.5);

  const Json back = RoundTrip(report);
  const Json* cache = back.Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->Find("policy")->AsString(), "unbounded");
  EXPECT_EQ(cache->Find("hits")->AsInt(), 321);
  EXPECT_EQ(cache->Find("misses")->AsInt(), 123);
  EXPECT_EQ(cache->Find("evictions")->AsInt(), 7);
  EXPECT_DOUBLE_EQ(cache->Find("saved_hours")->AsDouble(), 4567.5);
}

}  // namespace
}  // namespace mlprov::obs
