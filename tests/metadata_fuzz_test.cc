// Deterministic corruption fuzzer (ISSUE 3): serialize a small simulated
// trace, mutate it every which way — truncations, byte flips, line
// deletion/duplication, absurd numbers — and prove the strict parser
// returns a Status (never crashes or corrupts memory), while the lenient
// parser + TraceValidator repair + segmentation survive everything the
// strict parser accepts or salvages.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/segmentation.h"
#include "metadata/binary_serialization.h"
#include "metadata/serialization.h"
#include "metadata/trace_validator.h"
#include "simulator/pipeline_simulator.h"

namespace mlprov {
namespace {

// One small but representative trace, shared by all fuzz cases.
const std::string& SeedCorpusText() {
  static const std::string* text = [] {
    sim::CorpusConfig corpus_config;
    corpus_config.seed = 5;
    common::Rng rng(corpus_config.seed);
    sim::PipelineConfig config =
        sim::SamplePipelineConfig(corpus_config, 0, rng);
    config.lifespan_days = 10.0;
    const sim::PipelineTrace trace =
        sim::SimulatePipeline(corpus_config, config, sim::CostModel());
    return new std::string(metadata::SerializeStore(trace.store));
  }();
  return *text;
}

// Exercises the full crash surface on one mutant: strict parse, and if
// the store is accepted, validation + segmentation on it; then lenient
// parse + repair + segmentation unconditionally. Any crash/UB fails the
// test binary itself; sanitizer CI runs this suite.
void ExpectSurvives(const std::string& mutant) {
  const auto strict = metadata::DeserializeStore(mutant);
  if (strict.ok()) {
    const auto report = metadata::TraceValidator().Validate(*strict);
    if (!report.NeedsQuarantine()) {
      (void)core::SegmentTrace(*strict);
    }
  }
  metadata::LenientStats stats;
  auto lenient = metadata::DeserializeStoreLenient(mutant, &stats);
  if (lenient.ok()) {
    const metadata::TraceValidator repairer(
        metadata::TraceValidator::Mode::kRepair);
    (void)repairer.ValidateAndRepair(*lenient);
    (void)core::SegmentTrace(*lenient);
  }
}

TEST(MetadataFuzzTest, RoundTripIsExact) {
  const std::string& text = SeedCorpusText();
  const auto store = metadata::DeserializeStore(text);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(metadata::SerializeStore(*store), text);
}

TEST(MetadataFuzzTest, TruncationsNeverCrash) {
  const std::string& text = SeedCorpusText();
  // Truncate at 64 evenly spaced byte offsets plus a few boundaries.
  std::vector<size_t> cuts = {0, 1, 13, 14, 15};
  for (int i = 1; i <= 64; ++i) {
    cuts.push_back(text.size() * static_cast<size_t>(i) / 65);
  }
  for (const size_t cut : cuts) {
    ExpectSurvives(text.substr(0, cut));
  }
}

TEST(MetadataFuzzTest, ByteFlipsNeverCrash) {
  const std::string& text = SeedCorpusText();
  for (uint64_t round = 0; round < 200; ++round) {
    common::Rng rng = common::Rng::Derive(0xF022, round);
    std::string mutant = text;
    const int flips = 1 + static_cast<int>(rng.NextUint64(8));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(
          rng.NextUint64(static_cast<uint64_t>(mutant.size())));
      mutant[pos] = static_cast<char>(rng.NextUint64(256));
    }
    ExpectSurvives(mutant);
  }
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

TEST(MetadataFuzzTest, LineDeletionsNeverCrash) {
  const std::vector<std::string> lines = SplitLines(SeedCorpusText());
  ASSERT_GT(lines.size(), 2u);
  for (uint64_t round = 0; round < 100; ++round) {
    common::Rng rng = common::Rng::Derive(0xDE1E7E, round);
    std::vector<std::string> mutant = lines;
    const size_t victim = 1 + static_cast<size_t>(rng.NextUint64(
                                  static_cast<uint64_t>(mutant.size() - 1)));
    mutant.erase(mutant.begin() + static_cast<ptrdiff_t>(victim));
    ExpectSurvives(JoinLines(mutant));
  }
}

TEST(MetadataFuzzTest, LineDuplicationsNeverCrash) {
  const std::vector<std::string> lines = SplitLines(SeedCorpusText());
  for (uint64_t round = 0; round < 100; ++round) {
    common::Rng rng = common::Rng::Derive(0xD0B1E, round);
    std::vector<std::string> mutant = lines;
    const size_t victim = 1 + static_cast<size_t>(rng.NextUint64(
                                  static_cast<uint64_t>(mutant.size() - 1)));
    mutant.insert(mutant.begin() + static_cast<ptrdiff_t>(victim),
                  mutant[victim]);
    ExpectSurvives(JoinLines(mutant));
  }
}

TEST(MetadataFuzzTest, HugeAndHostileNumbersReturnStatusNotCrash) {
  const std::vector<std::string> hostile = {
      "MLPROVSTORE v1\nA 3 100\nP a 1 k i 999999999999999999999999999\n",
      "MLPROVSTORE v1\nA 3 100\nP a 1 k i -999999999999999999999999999\n",
      "MLPROVSTORE v1\nA 3 100\nP a 1 k d 1e99999\n",
      "MLPROVSTORE v1\nA 3 100\nP a 1 k d nan(garbage)junk\n",
      "MLPROVSTORE v1\nA 3 100\nP a 1 k i 0x1p300\n",
      "MLPROVSTORE v1\nA 99999999999999999999 100\n",
      "MLPROVSTORE v1\nE 2 9223372036854775807 -9223372036854775808 1 "
      "1e308\nV 1 1 0 0\n",
      "MLPROVSTORE v1\nV 9999999999 9999999999 7 0\n",
      "MLPROVSTORE v1\nCE 318273 18273\n",
      "MLPROVSTORE v1\nP e 99 k s x\n",
  };
  for (const std::string& text : hostile) {
    ExpectSurvives(text);
    // The property-value cases must be rejected by the strict parser,
    // not silently accepted with a garbage value.
    if (text.find("P a 1 k i 9") != std::string::npos ||
        text.find("1e99999") != std::string::npos) {
      EXPECT_FALSE(metadata::DeserializeStore(text).ok()) << text;
    }
  }
}

TEST(MetadataFuzzTest, InvalidEnumsRejectedStrictCoercedLenient) {
  const std::string text =
      "MLPROVSTORE v1\nA 99 100\nE 77 100 200 1 1.0\nV 1 1 5 0\n";
  EXPECT_FALSE(metadata::DeserializeStore(text).ok());
  metadata::LenientStats stats;
  const auto store = metadata::DeserializeStoreLenient(text, &stats);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(stats.invalid_enums, 3u);
  EXPECT_EQ(store->artifacts()[0].type, metadata::ArtifactType::kCustom);
  EXPECT_EQ(store->executions()[0].type, metadata::ExecutionType::kCustom);
}

TEST(MetadataFuzzTest, LenientParseCountsAndSalvages) {
  std::string text = SeedCorpusText();
  text += "garbage line that matches no tag\n";
  text += "V 999999 999999 0 0\n";
  text += "P a 999999 key i 3\n";
  metadata::LenientStats stats;
  auto store = metadata::DeserializeStoreLenient(text, &stats);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(stats.malformed_lines, 1u);
  EXPECT_EQ(stats.dangling_events, 1u);
  EXPECT_EQ(stats.orphan_properties, 1u);
  // The salvaged store still validates + repairs + segments.
  const metadata::TraceValidator repairer(
      metadata::TraceValidator::Mode::kRepair);
  const auto report = repairer.ValidateAndRepair(*store);
  EXPECT_EQ(report.dropped_events, 1u);
  (void)core::SegmentTrace(*store);
}

// ---------------------------------------------------------------------
// Binary-format mirror of the suites above (ISSUE 7): the MLPB strict
// parser, the lenient salvage path, and the zero-copy cursor must all
// return Status — never crash or invoke UB — under the same mutations.
// ---------------------------------------------------------------------

const std::string& SeedCorpusBinary() {
  static const std::string* binary = [] {
    const auto store = metadata::DeserializeStore(SeedCorpusText());
    return new std::string(metadata::SerializeStoreBinary(*store));
  }();
  return *binary;
}

// Full binary crash surface on one mutant: strict parse (+ validation +
// segmentation when accepted), lenient parse + repair + segmentation,
// and a complete zero-copy cursor walk touching every decoded view.
void ExpectSurvivesBinary(const std::string& mutant) {
  const auto strict = metadata::DeserializeStoreBinary(mutant);
  if (strict.ok()) {
    const auto report = metadata::TraceValidator().Validate(*strict);
    if (!report.NeedsQuarantine()) {
      (void)core::SegmentTrace(*strict);
    }
  }
  metadata::LenientStats stats;
  auto lenient = metadata::DeserializeStoreBinaryLenient(mutant, &stats);
  if (lenient.ok()) {
    const metadata::TraceValidator repairer(
        metadata::TraceValidator::Mode::kRepair);
    (void)repairer.ValidateAndRepair(*lenient);
    (void)core::SegmentTrace(*lenient);
  }
  auto cursor = metadata::BinaryStoreCursor::Open(mutant);
  if (cursor.ok()) {
    metadata::RecordRef record;
    size_t consumed = 0;
    while (cursor->Next(&record)) {
      // Touch every borrowed view so sanitizers see any dangling bytes.
      consumed += record.context_name.size();
      for (const metadata::PropertyRef& p : record.properties) {
        consumed += p.key.size();
        if (const auto* s = std::get_if<std::string_view>(&p.value)) {
          consumed += s->size();
        }
      }
    }
    (void)consumed;
  }
}

TEST(MetadataBinaryFuzzTest, RoundTripIsExact) {
  const auto store = metadata::DeserializeStoreBinary(SeedCorpusBinary());
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ(metadata::SerializeStore(*store), SeedCorpusText());
}

TEST(MetadataBinaryFuzzTest, TruncationsNeverCrash) {
  const std::string& binary = SeedCorpusBinary();
  std::vector<size_t> cuts = {0, 1, 4, 5, 6};
  for (int i = 1; i <= 128; ++i) {
    cuts.push_back(binary.size() * static_cast<size_t>(i) / 129);
  }
  for (const size_t cut : cuts) {
    ExpectSurvivesBinary(binary.substr(0, cut));
  }
}

TEST(MetadataBinaryFuzzTest, ByteFlipsNeverCrash) {
  const std::string& binary = SeedCorpusBinary();
  for (uint64_t round = 0; round < 300; ++round) {
    common::Rng rng = common::Rng::Derive(0xB17F11, round);
    std::string mutant = binary;
    const int flips = 1 + static_cast<int>(rng.NextUint64(8));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(
          rng.NextUint64(static_cast<uint64_t>(mutant.size())));
      mutant[pos] = static_cast<char>(rng.NextUint64(256));
    }
    ExpectSurvivesBinary(mutant);
  }
}

TEST(MetadataBinaryFuzzTest, ByteInsertionsAndDeletionsNeverCrash) {
  const std::string& binary = SeedCorpusBinary();
  for (uint64_t round = 0; round < 150; ++round) {
    common::Rng rng = common::Rng::Derive(0xB1DE1, round);
    std::string mutant = binary;
    const size_t pos = static_cast<size_t>(
        rng.NextUint64(static_cast<uint64_t>(mutant.size())));
    if (rng.NextUint64(2) == 0) {
      mutant.erase(pos, 1 + static_cast<size_t>(rng.NextUint64(4)));
    } else {
      mutant.insert(pos, 1 + static_cast<size_t>(rng.NextUint64(4)),
                    static_cast<char>(rng.NextUint64(256)));
    }
    ExpectSurvivesBinary(mutant);
  }
}

// Hand-crafted hostile payloads: varint overflow, absurd counts, lying
// section/column lengths, hostile intern indices.
std::string BinaryWithSections(const std::vector<std::pair<char, std::string>>&
                                   sections) {
  using metadata::binwire::AppendVarint;
  std::string out(metadata::kBinaryStoreMagic,
                  sizeof(metadata::kBinaryStoreMagic));
  out.push_back(static_cast<char>(metadata::kBinaryStoreVersion));
  for (const auto& [tag, payload] : sections) {
    out.push_back(tag);
    AppendVarint(out, payload.size());
    out.append(payload);
  }
  return out;
}

TEST(MetadataBinaryFuzzTest, HostilePayloadsReturnStatusNotCrash) {
  using metadata::binwire::AppendSvarint;
  using metadata::binwire::AppendVarint;

  // 10-byte varint with high bits set in the final byte: overflow.
  const std::string overflow_varint(10, '\xFF');
  // An 11-byte all-continuation varint: too wide.
  const std::string runaway_varint(11, '\x80');

  std::vector<std::string> hostile;
  // Section length varint overflows.
  hostile.push_back(std::string("MLPB\x01S", 6) + overflow_varint);
  hostile.push_back(std::string("MLPB\x01S", 6) + runaway_varint);
  // Section length far beyond the buffer.
  {
    std::string s("MLPB\x01S", 6);
    AppendVarint(s, 1ull << 62);
    hostile.push_back(s);
  }
  // Intern table claiming 2^60 strings (hostile reserve).
  {
    std::string payload;
    AppendVarint(payload, 1ull << 60);
    hostile.push_back(BinaryWithSections({{'S', payload}}));
  }
  // Intern string length larger than the section.
  {
    std::string payload;
    AppendVarint(payload, 1);
    AppendVarint(payload, 1ull << 40);
    hostile.push_back(BinaryWithSections({{'S', payload}}));
  }
  // Artifact count disagreeing with the types column length.
  {
    std::string payload;
    AppendVarint(payload, 100);       // claims 100 artifacts
    AppendVarint(payload, 2);         // types column: only 2 bytes
    payload += "\x00\x01";
    AppendVarint(payload, 0);         // empty times column
    hostile.push_back(BinaryWithSections({{'S', "\0"}, {'A', payload}}));
  }
  // Times column shorter than the row count (truncated mid-delta).
  {
    std::string payload;
    AppendVarint(payload, 3);
    AppendVarint(payload, 3);
    payload += std::string("\x00\x00\x00", 3);
    std::string times;
    AppendSvarint(times, 5);  // only one delta for three rows
    AppendVarint(payload, times.size());
    payload += times;
    std::string empty_interns;
    AppendVarint(empty_interns, 0);
    hostile.push_back(
        BinaryWithSections({{'S', empty_interns}, {'A', payload}}));
  }
  // Property row with a hostile intern index and an orphan owner.
  {
    std::string interns;
    AppendVarint(interns, 1);
    AppendVarint(interns, 1);
    interns += "k";
    std::string rows;
    AppendVarint(rows, 999);            // owner id delta: orphan
    AppendVarint(rows, 1ull << 50);     // key intern index: hostile
    rows.push_back('i');
    AppendSvarint(rows, 42);
    std::string payload;
    AppendVarint(payload, 1);
    AppendVarint(payload, rows.size());
    payload += rows;
    hostile.push_back(BinaryWithSections({{'S', interns}, {'p', payload}}));
  }
  // Event ids wrapping around int64 via huge deltas.
  {
    std::string col_exec, col_art, col_time;
    AppendSvarint(col_exec, INT64_MAX);
    AppendSvarint(col_art, INT64_MIN);
    AppendSvarint(col_time, INT64_MAX);
    std::string payload;
    AppendVarint(payload, 1);
    AppendVarint(payload, col_exec.size());
    payload += col_exec;
    AppendVarint(payload, col_art.size());
    payload += col_art;
    AppendVarint(payload, 1);
    payload += '\x01';
    AppendVarint(payload, col_time.size());
    payload += col_time;
    hostile.push_back(BinaryWithSections({{'V', payload}}));
  }
  // Context membership count beyond the row bytes.
  {
    std::string interns;
    AppendVarint(interns, 1);
    AppendVarint(interns, 2);
    interns += "cx";
    std::string rows;
    AppendVarint(rows, 0);          // name index
    AppendVarint(rows, 1ull << 30); // executions count: lies
    std::string payload;
    AppendVarint(payload, 1);
    AppendVarint(payload, rows.size());
    payload += rows;
    hostile.push_back(BinaryWithSections({{'S', interns}, {'C', payload}}));
  }
  // Empty-but-well-formed section payloads (count 0 + ncols empty
  // columns), for reaching a hostile later section in strict order.
  const auto empty_section = [](int ncols) {
    std::string s;
    AppendVarint(s, 0);
    for (int i = 0; i < ncols; ++i) AppendVarint(s, 0);
    return s;
  };
  // Event counts in [2^64-7, 2^64-1]: the unsigned (n + 7) / 8 wraps to
  // 0, so an empty kind bitmap matches the shape check unless n is also
  // bounded by the delta columns; the count must never reach a reserve.
  for (const uint64_t n :
       {~uint64_t{0}, ~uint64_t{0} - 6, uint64_t{1} << 61}) {
    std::string events;
    AppendVarint(events, n);
    for (int col = 0; col < 4; ++col) AppendVarint(events, 0);
    hostile.push_back(BinaryWithSections({{'S', empty_section(0)},
                                          {'A', empty_section(2)},
                                          {'E', empty_section(5)},
                                          {'V', events}}));
  }
  // Context section claiming 2^64-1 rows over an empty row column
  // (hostile reserve in the cursor path).
  {
    std::string contexts;
    AppendVarint(contexts, ~uint64_t{0});
    AppendVarint(contexts, 0);
    hostile.push_back(BinaryWithSections({{'S', empty_section(0)},
                                          {'A', empty_section(2)},
                                          {'E', empty_section(5)},
                                          {'V', empty_section(4)},
                                          {'p', empty_section(1)},
                                          {'q', empty_section(1)},
                                          {'C', contexts}}));
  }
  // Unknown section tags and duplicated sections.
  hostile.push_back(BinaryWithSections({{'Z', "junk"}, {'Z', "junk"}}));
  {
    std::string empty_interns;
    AppendVarint(empty_interns, 0);
    hostile.push_back(BinaryWithSections(
        {{'S', empty_interns}, {'S', empty_interns}}));
  }

  for (const std::string& mutant : hostile) {
    ExpectSurvivesBinary(mutant);
    EXPECT_FALSE(metadata::DeserializeStoreBinary(mutant).ok());
  }
}

}  // namespace
}  // namespace mlprov
