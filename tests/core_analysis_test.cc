#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.h"

#include "core/graphlet_analysis.h"
#include "core/pipeline_analysis.h"
#include "simulator/corpus_generator.h"

namespace mlprov::core {
namespace {

/// Shared small corpus for the analysis tests (generated once).
const sim::Corpus& TestCorpus() {
  static const sim::Corpus* corpus = [] {
    sim::CorpusConfig config;
    config.num_pipelines = 60;
    config.seed = 777;
    return new sim::Corpus(sim::GenerateCorpus(config));
  }();
  return *corpus;
}

const SegmentedCorpus& TestSegmented() {
  static const SegmentedCorpus* segmented =
      new SegmentedCorpus(SegmentCorpus(TestCorpus()));
  return *segmented;
}

TEST(ModelClassTest, Mapping) {
  EXPECT_EQ(ClassOf(metadata::ModelType::kDnn), ModelClass::kDnn);
  EXPECT_EQ(ClassOf(metadata::ModelType::kDnnLinear), ModelClass::kDnn);
  EXPECT_EQ(ClassOf(metadata::ModelType::kLinear), ModelClass::kLinear);
  EXPECT_EQ(ClassOf(metadata::ModelType::kTrees), ModelClass::kRest);
  EXPECT_EQ(ClassOf(metadata::ModelType::kEnsemble), ModelClass::kRest);
}

TEST(ActivityTest, LifespanWithinHorizon) {
  const ActivityStats stats = ComputeActivity(TestCorpus());
  ASSERT_FALSE(stats.lifespan_days.empty());
  for (double d : stats.lifespan_days) {
    EXPECT_GE(d, 1.0);
    EXPECT_LE(d, 131.0);
  }
  EXPECT_GT(stats.max_trace_nodes, 100u);
}

TEST(ActivityTest, CadencePositiveAndClassSplitsCover) {
  const ActivityStats stats = ComputeActivity(TestCorpus());
  for (double c : stats.models_per_day) EXPECT_GT(c, 0.0);
  size_t split_total = 0;
  for (const auto& v : stats.lifespan_by_class) split_total += v.size();
  EXPECT_EQ(split_total, stats.lifespan_days.size());
}

TEST(ActivityTest, LinearPipelinesLiveLongerThanDnn) {
  // Fig 3(d): calibrated population property; needs a moderate corpus.
  const ActivityStats stats = ComputeActivity(TestCorpus());
  const auto& dnn =
      stats.lifespan_by_class[static_cast<size_t>(ModelClass::kDnn)];
  const auto& linear =
      stats.lifespan_by_class[static_cast<size_t>(ModelClass::kLinear)];
  ASSERT_GT(dnn.size(), 5u);
  ASSERT_GT(linear.size(), 3u);
  EXPECT_GT(common::Mean(linear), common::Mean(dnn) * 0.9);
}

TEST(DataComplexityTest, FractionsAndDomains) {
  const DataComplexityStats stats = ComputeDataComplexity(TestCorpus());
  ASSERT_FALSE(stats.feature_counts.empty());
  for (double f : stats.categorical_fractions) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  EXPECT_GT(stats.mean_categorical_fraction, 0.3);
  EXPECT_LT(stats.mean_categorical_fraction, 0.75);
  EXPECT_GT(stats.mean_domain_all, 1e4);
  // Linear pipelines use larger categorical domains (Section 3.2).
  EXPECT_GT(stats.mean_domain_linear, stats.mean_domain_dnn * 0.5);
}

TEST(AnalyzerUsageTest, VocabularyDominatesUsage) {
  const AnalyzerUsageStats stats = ComputeAnalyzerUsage(TestCorpus());
  EXPECT_EQ(stats.num_pipelines, 60u);
  const auto vocab =
      static_cast<size_t>(metadata::AnalyzerType::kVocabulary);
  EXPECT_GT(stats.pipelines_referencing[vocab], 20u);
  for (int a = 0; a < metadata::kNumAnalyzerTypes; ++a) {
    if (a == static_cast<int>(metadata::AnalyzerType::kVocabulary)) {
      continue;
    }
    EXPECT_GE(stats.total_usage[vocab],
              stats.total_usage[static_cast<size_t>(a)]);
  }
}

TEST(ModelDiversityTest, SharesSumToOneAndDnnDominates) {
  const ModelDiversityStats stats = ComputeModelDiversity(TestCorpus());
  ASSERT_GT(stats.total_runs, 0u);
  double total = 0.0;
  for (int t = 0; t < metadata::kNumModelTypes; ++t) {
    total += stats.Share(static_cast<metadata::ModelType>(t));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(stats.Share(metadata::ModelType::kDnn), 0.35);
}

TEST(OperatorUsageTest, TrainingAndDeploymentNearUniversal) {
  const OperatorUsageStats stats = ComputeOperatorUsage(TestCorpus());
  EXPECT_DOUBLE_EQ(stats.Fraction(metadata::ExecutionType::kTrainer), 1.0);
  EXPECT_DOUBLE_EQ(stats.Fraction(metadata::ExecutionType::kExampleGen),
                   1.0);
  EXPECT_GT(stats.Fraction(metadata::ExecutionType::kPusher), 0.9);
  // Validators appear in roughly half the pipelines (Fig 6).
  const double model_validation =
      stats.Fraction(metadata::ExecutionType::kModelValidator);
  EXPECT_GT(model_validation, 0.25);
  EXPECT_LT(model_validation, 0.8);
}

TEST(ResourceCostTest, SharesSumToOneAndTrainingBelowOneThird) {
  const ResourceCostStats stats = ComputeResourceCost(TestCorpus());
  ASSERT_GT(stats.total, 0.0);
  double total = 0.0;
  for (int g = 0; g < metadata::kNumOperatorGroups; ++g) {
    total += stats.Share(static_cast<metadata::OperatorGroup>(g));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_LT(stats.Share(metadata::OperatorGroup::kTraining), 1.0 / 3.0);
  EXPECT_GT(stats.Share(metadata::OperatorGroup::kDataIngestion), 0.1);
  EXPECT_GT(stats.failed_cost, 0.0);
  EXPECT_LT(stats.failed_cost, stats.total * 0.2);
}

TEST(SegmentedCorpusTest, CountsConsistent) {
  const SegmentedCorpus& segmented = TestSegmented();
  EXPECT_EQ(segmented.pipelines.size(), TestCorpus().pipelines.size());
  EXPECT_EQ(segmented.TotalGraphlets(), TestCorpus().TotalTrainerRuns());
  EXPECT_GT(segmented.TotalPushed(), 0u);
  EXPECT_LT(segmented.TotalPushed(), segmented.TotalGraphlets());
}

TEST(SimilarityTableTest, HistogramsNormalizedAndBimodal) {
  const SimilarityTable table =
      ComputeSimilarityTable(TestCorpus(), TestSegmented());
  ASSERT_GT(table.num_pairs, 100u);
  double jaccard_total = 0.0, dataset_total = 0.0;
  for (int i = 0; i < 4; ++i) {
    jaccard_total += table.jaccard_hist[static_cast<size_t>(i)];
    dataset_total += table.dataset_hist[static_cast<size_t>(i)];
  }
  EXPECT_NEAR(jaccard_total, 1.0, 1e-9);
  EXPECT_NEAR(dataset_total, 1.0, 1e-9);
  // Paper Table 1 shapes: Jaccard mass concentrates at the top bucket,
  // dataset similarity at the bottom bucket (trend reversed).
  EXPECT_GT(table.jaccard_hist[3], table.jaccard_hist[1]);
  EXPECT_GT(table.dataset_hist[0], 0.5);
  EXPECT_GT(table.jaccard_mean, table.dataset_mean);
}

TEST(PushStatsTest, CoreProperties) {
  const PushStats stats = ComputePushStats(TestSegmented());
  ASSERT_GT(stats.total_graphlets, 0u);
  // ~80% unpushed (Section 4.3).
  EXPECT_GT(stats.UnpushedFraction(), 0.6);
  EXPECT_LT(stats.UnpushedFraction(), 0.95);
  // Pushed gaps are upshifted relative to all gaps (Fig 9a).
  EXPECT_GT(common::Mean(stats.gap_hours_pushed),
            common::Mean(stats.gap_hours_all));
  // Unpushed graphlets cost more to train (Fig 9d).
  EXPECT_GT(common::Mean(stats.train_cost_unpushed),
            common::Mean(stats.train_cost_pushed));
  // Push likelihood below 0.6 for every model type (Fig 9f).
  for (double rate : stats.push_rate_by_type) EXPECT_LT(rate, 0.65);
}

TEST(WasteEstimateTest, ConservativeBoundAboveThirty) {
  const WasteEstimate waste = EstimateWaste(TestCorpus(), TestSegmented());
  EXPECT_GT(waste.unpushed_cost_fraction, 0.5);
  EXPECT_GT(waste.warmstart_graphlet_share, 0.0);
  EXPECT_LT(waste.warmstart_graphlet_share, 0.3);
  EXPECT_GT(waste.conservative_waste, 0.2);
  EXPECT_LT(waste.conservative_waste,
            waste.unpushed_cost_fraction + 1e-9);
}

TEST(PushDriversTest, NoLargeMarginalDifference) {
  const PushDriverStats stats =
      *ComputePushDrivers(TestCorpus(), TestSegmented());
  // Table 2: code match is high overall and similar across classes.
  EXPECT_GT(stats.code_match_all, 0.6);
  EXPECT_LT(std::abs(stats.code_match_pushed - stats.code_match_unpushed),
            0.15);
  EXPECT_GE(stats.input_similarity_all, 0.0);
  EXPECT_LE(stats.input_similarity_all, 1.0);
}

TEST(GraphletJaccardTest, SelfSimilarityIsOne) {
  const SegmentedCorpus& segmented = TestSegmented();
  for (const auto& sp : segmented.pipelines) {
    if (sp.graphlets.empty()) continue;
    const Graphlet& g = sp.graphlets.front();
    if (g.input_spans.empty()) continue;
    EXPECT_DOUBLE_EQ(GraphletJaccard(g, g), 1.0);
    break;
  }
}

}  // namespace
}  // namespace mlprov::core
