#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/table.h"

namespace mlprov::common {
namespace {

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 5.0;
    all.Add(x);
    (i % 2 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.0);
}

TEST(QuantileTest, InterpolatesBetweenOrderStats) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.75), 7.5);
}

TEST(QuantileTest, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(MeanMedianTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0, 100.0}), 2.0);
}

TEST(CorrelationTest, PerfectAndDegenerate) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> ny = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, ny), -1.0, 1e-12);
  std::vector<double> flat = {5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, flat), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1.0}, {2.0}), 0.0);
}

TEST(HistogramTest, LinearBucketsAndClamping) {
  Histogram h = Histogram::Linear(0.0, 10.0, 5);
  h.Add(-1.0);   // clamps to first bucket
  h.Add(0.5);
  h.Add(9.9);
  h.Add(100.0);  // clamps to last bucket
  auto buckets = h.Buckets();
  ASSERT_EQ(buckets.size(), 5u);
  EXPECT_EQ(buckets[0].count, 2u);
  EXPECT_EQ(buckets[4].count, 2u);
  EXPECT_EQ(h.total_count(), 4u);
  EXPECT_DOUBLE_EQ(buckets[0].fraction, 0.5);
}

TEST(HistogramTest, CdfMonotoneAndEndsAtOne) {
  Histogram h = Histogram::Linear(0.0, 1.0, 10);
  for (int i = 0; i < 100; ++i) h.Add(i / 100.0);
  auto cdf = h.Cdf();
  for (size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
  EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
}

TEST(HistogramTest, Log10Buckets) {
  Histogram h = Histogram::Log10(1.0, 1000.0, 3);
  h.Add(5.0);     // bucket [1,10)
  h.Add(50.0);    // bucket [10,100)
  h.Add(500.0);   // bucket [100,1000)
  auto buckets = h.Buckets();
  ASSERT_EQ(buckets.size(), 3u);
  for (const auto& b : buckets) EXPECT_EQ(b.count, 1u);
  EXPECT_NEAR(buckets[0].lo, 1.0, 1e-9);
  EXPECT_NEAR(buckets[1].lo, 10.0, 1e-9);
  EXPECT_NEAR(buckets[2].hi, 1000.0, 1e-6);
}

TEST(HistogramTest, RenderContainsLabelAndCounts) {
  Histogram h = Histogram::Linear(0.0, 1.0, 2);
  h.Add(0.2);
  const std::string text = h.Render("my label");
  EXPECT_NE(text.find("my label"), std::string::npos);
  EXPECT_NE(text.find("n=1"), std::string::npos);
}

TEST(TextTableTest, RendersAlignedCells) {
  TextTable t({"name", "value"});
  t.AddRow({"alpha", TextTable::Num(1.5, 2)});
  t.AddRow({"b"});  // short row padded
  const std::string text = t.Render();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("1.50"), std::string::npos);
  EXPECT_NE(text.find("| name "), std::string::npos);
}

TEST(TextTableTest, PctFormatting) {
  EXPECT_EQ(TextTable::Pct(0.573), "57.3%");
  EXPECT_EQ(TextTable::Pct(1.0, 0), "100%");
}

}  // namespace
}  // namespace mlprov::common
