#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/metrics.h"

namespace mlprov::ml {
namespace {

TEST(DatasetTest, AddAndAccessRows) {
  Dataset d({"a", "b"});
  d.AddRow({1.0, 2.0}, 1, /*group=*/7, /*weight=*/2.0);
  d.AddRow({3.0, 4.0}, 0);
  EXPECT_EQ(d.NumRows(), 2u);
  EXPECT_EQ(d.NumFeatures(), 2u);
  EXPECT_DOUBLE_EQ(d.Feature(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(d.Feature(1, 0), 3.0);
  EXPECT_EQ(d.Label(0), 1);
  EXPECT_EQ(d.Label(1), 0);
  EXPECT_EQ(d.Group(0), 7);
  EXPECT_DOUBLE_EQ(d.Weight(0), 2.0);
  EXPECT_DOUBLE_EQ(d.PositiveFraction(), 0.5);
}

TEST(DatasetTest, SubsetPreservesContents) {
  Dataset d({"x"});
  for (int i = 0; i < 10; ++i) {
    d.AddRow({static_cast<double>(i)}, i % 2, i / 3);
  }
  Dataset sub = d.Subset({1, 4, 9});
  EXPECT_EQ(sub.NumRows(), 3u);
  EXPECT_DOUBLE_EQ(sub.Feature(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(sub.Feature(2, 0), 9.0);
  EXPECT_EQ(sub.Label(2), 1);
  EXPECT_EQ(sub.Group(1), 1);
}

TEST(DatasetTest, SelectFeaturesKeepsColumnsAndNames) {
  Dataset d({"a", "b", "c"});
  d.AddRow({1, 2, 3}, 1);
  d.AddRow({4, 5, 6}, 0);
  Dataset sel = d.SelectFeatures({2, 0});
  EXPECT_EQ(sel.NumFeatures(), 2u);
  EXPECT_EQ(sel.feature_names()[0], "c");
  EXPECT_EQ(sel.feature_names()[1], "a");
  EXPECT_DOUBLE_EQ(sel.Feature(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sel.Feature(1, 1), 4.0);
  EXPECT_EQ(sel.Label(0), 1);
}

TEST(DatasetTest, GroupSplitKeepsGroupsIntact) {
  Dataset d({"x"});
  for (int g = 0; g < 20; ++g) {
    for (int i = 0; i < 5; ++i) {
      d.AddRow({static_cast<double>(g)}, 0, g);
    }
  }
  common::Rng rng(3);
  const auto [train, test] = d.GroupSplit(0.8, rng);
  EXPECT_EQ(train.size() + test.size(), d.NumRows());
  EXPECT_NEAR(static_cast<double>(train.size()) /
                  static_cast<double>(d.NumRows()),
              0.8, 0.1);
  // No group appears on both sides.
  std::set<int64_t> train_groups, test_groups;
  for (size_t r : train) train_groups.insert(d.Group(r));
  for (size_t r : test) test_groups.insert(d.Group(r));
  for (int64_t g : test_groups) {
    EXPECT_EQ(train_groups.count(g), 0u);
  }
}

TEST(DatasetTest, GroupSplitDeterministicPerSeed) {
  Dataset d({"x"});
  for (int g = 0; g < 10; ++g) {
    d.AddRow({0.0}, 0, g);
  }
  common::Rng rng_a(5), rng_b(5);
  const auto split_a = d.GroupSplit(0.5, rng_a);
  const auto split_b = d.GroupSplit(0.5, rng_b);
  EXPECT_EQ(split_a.first, split_b.first);
  EXPECT_EQ(split_a.second, split_b.second);
}

TEST(ConfusionTest, CountsAndRates) {
  const std::vector<double> scores = {0.9, 0.8, 0.4, 0.3, 0.6, 0.1};
  const std::vector<int> labels = {1, 1, 1, 0, 0, 0};
  const Confusion c = ConfusionAt(scores, labels, 0.5);
  EXPECT_EQ(c.tp, 2u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 2u);
  EXPECT_NEAR(c.TruePositiveRate(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.FalsePositiveRate(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.Accuracy(), 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(c.BalancedAccuracy(), 2.0 / 3.0, 1e-12);
}

TEST(ConfusionTest, DegenerateLabelSets) {
  Confusion empty;
  EXPECT_DOUBLE_EQ(empty.BalancedAccuracy(), 0.0);
  const Confusion all_pos = ConfusionAt({0.9, 0.9}, {1, 1}, 0.5);
  EXPECT_DOUBLE_EQ(all_pos.TruePositiveRate(), 1.0);
  EXPECT_DOUBLE_EQ(all_pos.TrueNegativeRate(), 0.0);
}

TEST(BalancedAccuracyTest, PerfectAndRandom) {
  const std::vector<int> labels = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(BalancedAccuracy({0.9, 0.8, 0.1, 0.2}, labels), 1.0);
  EXPECT_DOUBLE_EQ(BalancedAccuracy({0.1, 0.2, 0.9, 0.8}, labels), 0.0);
  // All same score >= threshold: predicts all positive => BA = 0.5.
  EXPECT_DOUBLE_EQ(BalancedAccuracy({0.5, 0.5, 0.5, 0.5}, labels), 0.5);
}

TEST(RocTest, PerfectClassifierHasUnitAuc) {
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  const std::vector<int> labels = {1, 1, 0, 0};
  EXPECT_NEAR(AreaUnderRoc(scores, labels), 1.0, 1e-12);
}

TEST(RocTest, ReversedClassifierHasZeroAuc) {
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const std::vector<int> labels = {1, 1, 0, 0};
  EXPECT_NEAR(AreaUnderRoc(scores, labels), 0.0, 1e-12);
}

TEST(RocTest, TiesCountHalf) {
  const std::vector<double> scores = {0.5, 0.5};
  const std::vector<int> labels = {1, 0};
  EXPECT_NEAR(AreaUnderRoc(scores, labels), 0.5, 1e-12);
}

TEST(RocTest, DegenerateLabels) {
  EXPECT_DOUBLE_EQ(AreaUnderRoc({0.5, 0.7}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(AreaUnderRoc({0.5, 0.7}, {0, 0}), 0.5);
}

TEST(RocTest, CurveEndpointsAndMonotonicity) {
  common::Rng rng(77);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 500; ++i) {
    const int y = rng.Bernoulli(0.3) ? 1 : 0;
    scores.push_back(rng.NextDouble() * 0.5 + 0.4 * y);
    labels.push_back(y);
  }
  const auto curve = RocCurve(scores, labels);
  ASSERT_GE(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().fpr, 1.0);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].tpr + 1e-12, curve[i - 1].tpr);
    EXPECT_GE(curve[i].fpr + 1e-12, curve[i - 1].fpr);
  }
}

}  // namespace
}  // namespace mlprov::ml
