#include "metadata/trace.h"

#include <gtest/gtest.h>

#include "metadata/metadata_store.h"

namespace mlprov::metadata {
namespace {

// Builds the Figure 2(a)-style trace:
//   ExampleGen e1 -> span a1
//   ExampleGen e2 -> span a2
//   ExampleGen e3 -> span a3
//   Trainer    e4 reads {a1, a2} -> model a4
//   Trainer    e5 reads {a2, a3} -> model a5
//   Pusher     e6 reads a4 -> pushed a6
struct SampleTrace {
  MetadataStore store;
  ExecutionId gen1, gen2, gen3, trainer1, trainer2, pusher;
  ArtifactId span1, span2, span3, model1, model2, pushed;

  SampleTrace() {
    auto add_exec = [&](ExecutionType t, Timestamp start) {
      Execution e;
      e.type = t;
      e.start_time = start;
      e.end_time = start + 10;
      return store.PutExecution(e);
    };
    auto add_artifact = [&](ArtifactType t, Timestamp created) {
      Artifact a;
      a.type = t;
      a.create_time = created;
      return store.PutArtifact(a);
    };
    auto link = [&](ExecutionId e, ArtifactId a, EventKind k) {
      ASSERT_TRUE(store.PutEvent({e, a, k, 0}).ok());
    };
    gen1 = add_exec(ExecutionType::kExampleGen, 0);
    span1 = add_artifact(ArtifactType::kExamples, 10);
    link(gen1, span1, EventKind::kOutput);
    gen2 = add_exec(ExecutionType::kExampleGen, 20);
    span2 = add_artifact(ArtifactType::kExamples, 30);
    link(gen2, span2, EventKind::kOutput);
    gen3 = add_exec(ExecutionType::kExampleGen, 40);
    span3 = add_artifact(ArtifactType::kExamples, 50);
    link(gen3, span3, EventKind::kOutput);

    trainer1 = add_exec(ExecutionType::kTrainer, 60);
    link(trainer1, span1, EventKind::kInput);
    link(trainer1, span2, EventKind::kInput);
    model1 = add_artifact(ArtifactType::kModel, 70);
    link(trainer1, model1, EventKind::kOutput);

    trainer2 = add_exec(ExecutionType::kTrainer, 80);
    link(trainer2, span2, EventKind::kInput);
    link(trainer2, span3, EventKind::kInput);
    model2 = add_artifact(ArtifactType::kModel, 90);
    link(trainer2, model2, EventKind::kOutput);

    pusher = add_exec(ExecutionType::kPusher, 100);
    link(pusher, model1, EventKind::kInput);
    pushed = add_artifact(ArtifactType::kPushedModel, 110);
    link(pusher, pushed, EventKind::kOutput);
  }
};

TEST(TraceViewTest, NumNodes) {
  SampleTrace t;
  TraceView view(&t.store);
  EXPECT_EQ(view.NumNodes(), 6u + 6u);
}

TEST(TraceViewTest, AncestorExecutions) {
  SampleTrace t;
  TraceView view(&t.store);
  EXPECT_EQ(view.AncestorExecutions(t.trainer1),
            (std::vector<ExecutionId>{t.gen1, t.gen2}));
  EXPECT_EQ(view.AncestorExecutions(t.trainer2),
            (std::vector<ExecutionId>{t.gen2, t.gen3}));
  EXPECT_EQ(view.AncestorExecutions(t.pusher),
            (std::vector<ExecutionId>{t.gen1, t.gen2, t.trainer1}));
  EXPECT_TRUE(view.AncestorExecutions(t.gen1).empty());
}

TEST(TraceViewTest, AncestorArtifacts) {
  SampleTrace t;
  TraceView view(&t.store);
  EXPECT_EQ(view.AncestorArtifacts(t.trainer1),
            (std::vector<ArtifactId>{t.span1, t.span2}));
  EXPECT_EQ(view.AncestorArtifacts(t.pusher),
            (std::vector<ArtifactId>{t.span1, t.span2, t.model1}));
}

TEST(TraceViewTest, DescendantsWithStopOptions) {
  SampleTrace t;
  TraceView view(&t.store);
  EXPECT_EQ(view.DescendantExecutions(t.trainer1),
            (std::vector<ExecutionId>{t.pusher}));
  // Gen2 feeds both trainers; stopping at trainers prunes everything below.
  TraverseOptions stop_at_trainer;
  stop_at_trainer.stop_types = {ExecutionType::kTrainer};
  EXPECT_TRUE(view.DescendantExecutions(t.gen2, stop_at_trainer).empty());
  EXPECT_EQ(view.DescendantExecutions(t.gen1),
            (std::vector<ExecutionId>{t.trainer1, t.pusher}));
}

TEST(TraceViewTest, TraverseOptionsPredicateAndTypesAgree) {
  SampleTrace t;
  TraceView view(&t.store);
  TraverseOptions by_type;
  by_type.stop_types = {ExecutionType::kTrainer};
  TraverseOptions by_predicate;
  by_predicate.stop = [](const Execution& e) {
    return e.type == ExecutionType::kTrainer;
  };
  for (ExecutionId exec :
       {t.gen1, t.gen2, t.gen3, t.trainer1, t.trainer2, t.pusher}) {
    EXPECT_EQ(view.DescendantExecutions(exec, by_type),
              view.DescendantExecutions(exec, by_predicate));
  }
}

TEST(TraceViewTest, TopologicalOrderRespectsDependencies) {
  SampleTrace t;
  TraceView view(&t.store);
  const auto order = view.TopologicalOrder();
  ASSERT_EQ(order.size(), t.store.num_executions());
  auto pos = [&](ExecutionId e) {
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] == e) return i;
    }
    return order.size();
  };
  EXPECT_LT(pos(t.gen1), pos(t.trainer1));
  EXPECT_LT(pos(t.gen2), pos(t.trainer1));
  EXPECT_LT(pos(t.gen2), pos(t.trainer2));
  EXPECT_LT(pos(t.trainer1), pos(t.pusher));
}

TEST(TraceViewTest, ConnectedComponents) {
  SampleTrace t;
  TraceView view(&t.store);
  // Everything is connected through span2.
  EXPECT_EQ(view.NumConnectedComponents(), 1u);
  // Add an isolated artifact: one more component.
  t.store.PutArtifact({});
  EXPECT_EQ(view.NumConnectedComponents(), 2u);
}

TEST(TraceViewTest, TimeExtentIsLifespan) {
  SampleTrace t;
  TraceView view(&t.store);
  const auto [lo, hi] = view.TimeExtent();
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 110);
}

TEST(TraceViewTest, EmptyStore) {
  MetadataStore store;
  TraceView view(&store);
  EXPECT_EQ(view.NumNodes(), 0u);
  EXPECT_EQ(view.NumConnectedComponents(), 0u);
  EXPECT_TRUE(view.TopologicalOrder().empty());
  const auto [lo, hi] = view.TimeExtent();
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 0);
}

}  // namespace
}  // namespace mlprov::metadata
