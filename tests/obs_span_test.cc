#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/features.h"
#include "core/graphlet_analysis.h"
#include "core/waste_mitigation.h"
#include "obs/metrics.h"
#include "obs/span_context.h"
#include "obs/trace.h"
#include "simulator/corpus_generator.h"
#include "stream/fingerprint.h"
#include "stream/online_scorer.h"
#include "stream/replay.h"
#include "stream/session.h"

namespace mlprov::obs {
namespace {

/// Fault-injected, cache-enabled corpus: every causal edge kind (chain,
/// retry hop, cache hit) occurs.
sim::CorpusConfig EvalConfig() {
  sim::CorpusConfig config;
  config.num_pipelines = 8;
  config.seed = 910;
  config.horizon_days = 45.0;
  auto plan = common::FaultPlan::Parse("exec.trainer:transient:0.3");
  EXPECT_TRUE(plan.ok()) << plan.status();
  config.fault_plan = *plan;
  config.max_retries = 3;
  config.cache_policy = sim::CachePolicy::kUnbounded;
  return config;
}

/// One flow step as recorded: (ph, name) in emission order per bind id.
using FlowSteps =
    std::map<std::pair<std::string, uint64_t>,
             std::vector<std::pair<char, std::string>>>;

struct TraceSummary {
  FlowSteps flows;
  uint64_t corpus_fingerprint = 0;
  size_t retry_links = 0;
  size_t cache_links = 0;
  size_t complete_chains = 0;
};

/// Simulates the corpus, trains a scorer on a separate corpus, replays
/// every trace through a flow-emitting scoring session, and summarizes
/// the flows the recorder captured.
TraceSummary RunTraced(int threads) {
  common::SetGlobalThreads(threads);
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.Enable();

  const sim::Corpus corpus = sim::GenerateCorpus(EvalConfig());

  sim::CorpusConfig train_config;
  train_config.num_pipelines = 16;
  train_config.seed = 900;
  train_config.horizon_days = 45.0;
  const sim::Corpus train_corpus = sim::GenerateCorpus(train_config);
  const auto segmented = core::SegmentCorpus(train_corpus);
  const auto dataset = core::BuildWasteDataset(train_corpus, segmented);
  EXPECT_TRUE(dataset.ok()) << dataset.status();
  const auto scorer = stream::OnlineScorer::Train(*dataset);
  EXPECT_TRUE(scorer.ok()) << scorer.status();

  TraceSummary summary;
  std::vector<core::Graphlet> all_graphlets;
  for (const sim::PipelineTrace& trace : corpus.pipelines) {
    stream::SessionOptions options;
    options.scorer = &*scorer;
    options.emit_flows = true;
    stream::ProvenanceSession session(options);
    EXPECT_TRUE(stream::ReplayTrace(trace, session).ok());
    auto result = session.Finish();
    EXPECT_TRUE(result.ok()) << result.status();
    for (core::Graphlet& g : result->graphlets) {
      all_graphlets.push_back(std::move(g));
    }
  }
  summary.corpus_fingerprint = stream::FingerprintGraphlets(all_graphlets);

  for (const TraceEvent& event : recorder.Events()) {
    if (event.ph != 's' && event.ph != 't' && event.ph != 'f') continue;
    summary.flows[{event.category, event.flow_id}].emplace_back(
        event.ph, event.name);
  }
  recorder.Disable();
  recorder.Clear();
  common::SetGlobalThreads(1);

  for (const auto& [key, steps] : summary.flows) {
    const auto& [category, id] = key;
    if (category == "flow.retry" &&
        steps == std::vector<std::pair<char, std::string>>(
                     {{'s', "attempt"}, {'f', "retry"}})) {
      ++summary.retry_links;
    }
    if (category == "flow.cache" &&
        steps == std::vector<std::pair<char, std::string>>(
                     {{'s', "origin"}, {'f', "hit"}})) {
      ++summary.cache_links;
    }
    if (category == "flow.causal" &&
        steps == std::vector<std::pair<char, std::string>>(
                     {{'s', "exec"},
                      {'t', "arrival"},
                      {'t', "seal"},
                      {'f', "decision"}})) {
      ++summary.complete_chains;
    }
  }
  return summary;
}

class ObsSpanTest : public ::testing::Test {
 protected:
  void TearDown() override {
    TraceRecorder::Global().Disable();
    TraceRecorder::Global().Clear();
    common::SetGlobalThreads(1);
  }
};

TEST_F(ObsSpanTest, FlowBindIdsAreKindAndHopDisjoint) {
  const SpanContext ctx{7, 42, 0};
  EXPECT_NE(FlowBindId(ctx, FlowKind::kCausal),
            FlowBindId(ctx, FlowKind::kRetry));
  EXPECT_NE(FlowBindId(ctx, FlowKind::kRetry),
            FlowBindId(ctx, FlowKind::kCache));
  EXPECT_NE(FlowBindId(ctx, FlowKind::kCausal, 0),
            FlowBindId(ctx, FlowKind::kCausal, 1));
  // Deterministic: same inputs, same id.
  EXPECT_EQ(FlowBindId(ctx, FlowKind::kCausal),
            FlowBindId(SpanContext{7, 42, 99}, FlowKind::kCausal));
  // Seed-salted trace ids never collide with the invalid sentinel.
  EXPECT_NE(DeriveTraceId(0, 0), 0u);
  EXPECT_NE(DeriveTraceId(3, 111), DeriveTraceId(3, 112));
}

TEST_F(ObsSpanTest, FaultedAndCachedRunProducesLinkedFlows) {
  if (!kMetricsEnabled) {
    GTEST_SKIP() << "span instrumentation compiled out (MLPROV_OBS_NOOP)";
  }
  const TraceSummary summary = RunTraced(/*threads=*/1);

  // The fault plan forces trainer retries; the unbounded cache serves
  // repeat invocations; every settled decision closes its causal chain.
  EXPECT_GT(summary.retry_links, 0u);
  EXPECT_GT(summary.cache_links, 0u);
  EXPECT_GT(summary.complete_chains, 0u);

  // Flow discipline: every flow starts with 's' and never continues
  // after 'f'.
  for (const auto& [key, steps] : summary.flows) {
    ASSERT_FALSE(steps.empty());
    EXPECT_EQ(steps.front().first, 's')
        << key.first << "/" << key.second << " starts with "
        << steps.front().second;
    bool finished = false;
    for (const auto& [ph, name] : steps) {
      EXPECT_FALSE(finished) << key.first << "/" << key.second << ": "
                             << name << " after finish";
      if (ph == 'f') finished = true;
    }
  }
}

TEST_F(ObsSpanTest, FlowLinkageIsThreadCountInvariant) {
  const TraceSummary base = RunTraced(/*threads=*/1);
  for (int threads : {4, 8}) {
    const TraceSummary parallel = RunTraced(threads);
    // The corpus is byte-identical at any thread count...
    EXPECT_EQ(parallel.corpus_fingerprint, base.corpus_fingerprint)
        << "threads=" << threads;
    // ...and so is the *linkage*: the same bind ids carry the same step
    // sequences (event interleaving across ids may differ, the causal
    // structure may not).
    EXPECT_EQ(parallel.flows, base.flows) << "threads=" << threads;
    EXPECT_EQ(parallel.retry_links, base.retry_links);
    EXPECT_EQ(parallel.cache_links, base.cache_links);
    EXPECT_EQ(parallel.complete_chains, base.complete_chains);
  }
}

TEST_F(ObsSpanTest, BoundedBufferCountsDrops) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  const size_t old_max = recorder.max_events();
  recorder.set_max_events(4);
  recorder.Enable();
  for (int i = 0; i < 10; ++i) {
    TraceEvent event;
    event.name = "drop_test";
    event.category = "test";
    recorder.Record(std::move(event));
  }
  EXPECT_EQ(recorder.NumEvents(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);
  recorder.Disable();
  recorder.Clear();
  recorder.set_max_events(old_max);
  EXPECT_EQ(recorder.dropped(), 0u);
}

}  // namespace
}  // namespace mlprov::obs
