// Parameterized property sweeps over the similarity stack: metric
// axioms of the Appendix B dataset similarity, EMD consistency with the
// 1-D closed form, and LSH sensitivity, across dimensions and seeds.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataspan/span_stats.h"
#include "similarity/emd.h"
#include "similarity/s2jsd_lsh.h"
#include "similarity/span_similarity.h"

namespace mlprov::similarity {
namespace {

/// Sweep: distribution dimension for EMD-vs-1D cross-checks.
class EmdConsistencyTest : public ::testing::TestWithParam<int> {};

TEST_P(EmdConsistencyTest, ExactSolverMatchesClosedFormOn1D) {
  const int n = GetParam();
  common::Rng rng(100 + static_cast<uint64_t>(n));
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> p(static_cast<size_t>(n)), q(static_cast<size_t>(n));
    for (double& x : p) x = rng.NextDouble();
    for (double& x : q) x = rng.NextDouble();
    const double exact = EarthMoversDistance(
        p, q, [n](size_t i, size_t j) {
          return std::abs(static_cast<double>(i) - static_cast<double>(j)) /
                 static_cast<double>(n);
        });
    EXPECT_NEAR(exact, Emd1D(p, q), 1e-8) << "dim " << n;
  }
}

TEST_P(EmdConsistencyTest, NonNegativeAndIdentity) {
  const int n = GetParam();
  common::Rng rng(200 + static_cast<uint64_t>(n));
  std::vector<double> p(static_cast<size_t>(n));
  for (double& x : p) x = rng.NextDouble();
  auto cost = [](size_t i, size_t j) { return i == j ? 0.0 : 1.0; };
  EXPECT_NEAR(EarthMoversDistance(p, p, cost), 0.0, 1e-9);
  EXPECT_GE(Emd1D(p, p), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Dims, EmdConsistencyTest,
                         ::testing::Values(2, 3, 5, 10, 25));

/// Sweep: LSH bucket width — coarser buckets must collide at least as
/// often as finer ones on the same input pairs (monotone sensitivity).
class LshSensitivityTest : public ::testing::TestWithParam<double> {};

TEST_P(LshSensitivityTest, NearCollidesMoreThanFar) {
  S2JsdLsh::Options options;
  options.bucket_width = GetParam();
  S2JsdLsh lsh(options);
  common::Rng rng(42);
  int near_hits = 0, far_hits = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> base(10);
    for (double& x : base) x = rng.Uniform(0.1, 1.0);
    std::vector<double> near = base;
    for (double& x : near) x *= rng.Uniform(0.99, 1.01);
    std::vector<double> far(10);
    for (double& x : far) x = rng.Uniform(0.0, 1.0);
    near_hits += lsh.Hash(base) == lsh.Hash(near) ? 1 : 0;
    far_hits += lsh.Hash(base) == lsh.Hash(far) ? 1 : 0;
  }
  EXPECT_GE(near_hits, far_hits);
}

TEST_P(LshSensitivityTest, SoftSimilarityBoundedAndReflexive) {
  FeatureSimilarityOptions options;
  options.alpha = 0.8;
  options.beta = 0.2;
  options.soft_hash = true;
  options.lsh.bucket_width = GetParam();
  options.lsh.num_hashes = 8;
  FeatureSimilarity fs(options);
  dataspan::SchemaConfig config;
  config.num_features = 12;
  dataspan::SpanStatsGenerator gen(config, common::Rng(7));
  const dataspan::SpanStats span = gen.NextSpan();
  for (const auto& f : span.features) {
    const auto h = fs.HashVector(f);
    const double self = fs.SoftSimilarity(f, h, f, h);
    EXPECT_NEAR(self, 1.0, 1e-12);  // alpha + beta with itself
  }
  // Cross-feature soft similarities stay in [0, 1].
  const auto& a = span.features[0];
  const auto ha = fs.HashVector(a);
  for (size_t i = 1; i < span.features.size(); ++i) {
    const auto hb = fs.HashVector(span.features[i]);
    const double s = fs.SoftSimilarity(a, ha, span.features[i], hb);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Buckets, LshSensitivityTest,
                         ::testing::Values(0.02, 0.05, 0.1, 0.25));

/// Sweep: sequence lengths for the Eq. 3 normalization property.
class SequenceLengthTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SequenceLengthTest, NormalizationBounds) {
  const auto [n, m] = GetParam();
  dataspan::SchemaConfig config;
  config.num_features = 8;
  dataspan::SpanStatsGenerator gen(config, common::Rng(5));
  std::vector<dataspan::SpanStats> spans;
  for (int i = 0; i < std::max(n, m); ++i) spans.push_back(gen.NextSpan());
  SpanSimilarityCalculator calc(FeatureSimilarityOptions{});
  std::vector<const dataspan::SpanStats*> a, b;
  std::vector<int64_t> ka, kb;
  for (int i = 0; i < n; ++i) {
    a.push_back(&spans[static_cast<size_t>(i)]);
    ka.push_back(i);
  }
  for (int i = 0; i < m; ++i) {
    b.push_back(&spans[static_cast<size_t>(i)]);
    kb.push_back(i);
  }
  const double s = calc.SequenceSimilarity(a, ka, b, kb);
  EXPECT_GE(s, 0.0);
  // Eq. 3: at most min(n,m)/max(n,m).
  EXPECT_LE(s, static_cast<double>(std::min(n, m)) /
                       static_cast<double>(std::max(n, m)) +
                   1e-12);
  // Symmetric.
  EXPECT_NEAR(s, calc.SequenceSimilarity(b, kb, a, ka), 1e-12);
  // Identical prefix sequences of equal length score 1 (alpha+beta=1).
  if (n == m) EXPECT_NEAR(s, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Lengths, SequenceLengthTest,
    ::testing::Values(std::make_pair(1, 1), std::make_pair(1, 4),
                      std::make_pair(3, 3), std::make_pair(2, 7),
                      std::make_pair(8, 8)));

/// Sweep: alpha/beta splits keep Eq. 2 within [0, alpha+beta].
class AlphaBetaTest : public ::testing::TestWithParam<double> {};

TEST_P(AlphaBetaTest, SimilarityBounded) {
  const double alpha = GetParam();
  FeatureSimilarityOptions options;
  options.alpha = alpha;
  options.beta = 1.0 - alpha;
  FeatureSimilarity fs(options);
  dataspan::SchemaConfig config;
  config.num_features = 10;
  dataspan::SpanStatsGenerator gen(config, common::Rng(9));
  const auto s1 = gen.NextSpan();
  const auto s2 = gen.NextSpan();
  for (size_t i = 0; i < s1.features.size(); ++i) {
    for (size_t j = 0; j < s2.features.size(); ++j) {
      const double s = fs.Similarity(s1.features[i], s2.features[j]);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0 + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaBetaTest,
                         ::testing::Values(0.0, 0.4, 0.6, 0.8, 1.0));

}  // namespace
}  // namespace mlprov::similarity
