// Execution-memoization tests (ISSUE 4): content-addressed cache
// semantics (LRU, unbounded, invalidation), hit/miss/eviction accounting,
// byte-identity of --cache_policy=off with the default build, thread-count
// invariance with the cache on, structural equivalence of cached and
// uncached corpora, and the fired-fault bypass guarantee.
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoints.h"
#include "common/parallel.h"
#include "core/graphlet_analysis.h"
#include "metadata/serialization.h"
#include "metadata/trace_validator.h"
#include "obs/metrics.h"
#include "simulator/corpus_generator.h"
#include "simulator/execution_cache.h"
#include "simulator/pipeline_simulator.h"

namespace mlprov {
namespace {

sim::CorpusConfig SmallConfig() {
  sim::CorpusConfig config;
  config.num_pipelines = 12;
  config.seed = 777;
  config.horizon_days = 45.0;
  return config;
}

sim::CorpusConfig CachedConfig(sim::CachePolicy policy,
                               int capacity = 1024) {
  sim::CorpusConfig config = SmallConfig();
  config.cache_policy = policy;
  config.cache_capacity = capacity;
  return config;
}

std::string CorpusFingerprint(const sim::Corpus& corpus) {
  std::string fp;
  for (const sim::PipelineTrace& trace : corpus.pipelines) {
    fp += metadata::SerializeStore(trace.store);
  }
  return fp;
}

double TotalCost(const sim::Corpus& corpus) {
  double total = 0.0;
  for (const sim::PipelineTrace& trace : corpus.pipelines) {
    for (const metadata::Execution& e : trace.store.executions()) {
      total += e.compute_cost;
    }
  }
  return total;
}

size_t CountCacheHits(const sim::Corpus& corpus) {
  size_t hits = 0;
  for (const sim::PipelineTrace& trace : corpus.pipelines) {
    for (const metadata::Execution& e : trace.store.executions()) {
      hits += e.properties.count("cache_hit");
    }
  }
  return hits;
}

TEST(ExecutionCacheTest, ParsePolicy) {
  EXPECT_EQ(*sim::ParseCachePolicy("off"), sim::CachePolicy::kOff);
  EXPECT_EQ(*sim::ParseCachePolicy("lru"), sim::CachePolicy::kLru);
  EXPECT_EQ(*sim::ParseCachePolicy("unbounded"),
            sim::CachePolicy::kUnbounded);
  EXPECT_FALSE(sim::ParseCachePolicy("LRU").ok());
  EXPECT_FALSE(sim::ParseCachePolicy("").ok());
  EXPECT_STREQ(sim::ToString(sim::CachePolicy::kLru), "lru");
}

TEST(ExecutionCacheTest, KeyIgnoresInputOrder) {
  sim::ExecutionCache cache(sim::CachePolicy::kUnbounded, 0);
  cache.TagArtifact(1, 0xAAAA);
  cache.TagArtifact(2, 0xBBBB);
  const uint64_t forward =
      cache.Key(metadata::ExecutionType::kTrainer, 7, {1, 2});
  const uint64_t backward =
      cache.Key(metadata::ExecutionType::kTrainer, 7, {2, 1});
  EXPECT_EQ(forward, backward);
  // ...but operator type, salt, and input identity all matter.
  EXPECT_NE(forward,
            cache.Key(metadata::ExecutionType::kEvaluator, 7, {1, 2}));
  EXPECT_NE(forward,
            cache.Key(metadata::ExecutionType::kTrainer, 8, {1, 2}));
  EXPECT_NE(forward, cache.Key(metadata::ExecutionType::kTrainer, 7, {1}));
}

TEST(ExecutionCacheTest, RetaggedArtifactChangesKey) {
  sim::ExecutionCache cache(sim::CachePolicy::kUnbounded, 0);
  cache.TagArtifact(1, 0xAAAA);
  const uint64_t before =
      cache.Key(metadata::ExecutionType::kTrainer, 0, {1});
  cache.TagArtifact(1, 0xCCCC);
  EXPECT_NE(before, cache.Key(metadata::ExecutionType::kTrainer, 0, {1}));
}

TEST(ExecutionCacheTest, LruEvictsLeastRecentlyUsed) {
  sim::ExecutionCache cache(sim::CachePolicy::kLru, 2);
  cache.Insert(100);
  cache.Insert(200);
  EXPECT_TRUE(cache.Lookup(100));  // touch: 200 is now least recent
  cache.Insert(300);               // evicts 200
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.Lookup(100));
  EXPECT_TRUE(cache.Lookup(300));
  EXPECT_FALSE(cache.Lookup(200));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ExecutionCacheTest, UnboundedNeverEvicts) {
  sim::ExecutionCache cache(sim::CachePolicy::kUnbounded, 1);
  for (uint64_t key = 0; key < 100; ++key) cache.Insert(key);
  EXPECT_EQ(cache.size(), 100u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ExecutionCacheTest, OffNeverStores) {
  sim::ExecutionCache cache(sim::CachePolicy::kOff, 1024);
  cache.Insert(100);
  EXPECT_FALSE(cache.Lookup(100));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);  // disabled probes are not misses
}

TEST(ExecutionCacheTest, InvalidateDropsEntry) {
  sim::ExecutionCache cache(sim::CachePolicy::kUnbounded, 0);
  cache.Insert(100);
  cache.Invalidate(100);
  EXPECT_FALSE(cache.Lookup(100));
  EXPECT_EQ(cache.stats().invalidations, 1u);
  cache.Invalidate(100);  // absent: no-op
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ExecutionCacheTest, StatsCountHitsAndMisses) {
  sim::ExecutionCache cache(sim::CachePolicy::kUnbounded, 0);
  EXPECT_FALSE(cache.Lookup(5));
  cache.Insert(5);
  EXPECT_TRUE(cache.Lookup(5));
  EXPECT_TRUE(cache.Lookup(5));
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
  cache.CreditSavedHours(1.5);
  cache.CreditPartialSavedHours(0.5);
  EXPECT_DOUBLE_EQ(cache.stats().saved_hours, 2.0);
  EXPECT_EQ(cache.stats().partial_hits, 1u);
}

TEST(SimulatorCacheTest, PolicyOffIsByteIdenticalToDefault) {
  // The seed contract: --cache_policy=off (any capacity) produces the
  // exact corpus a build without the cache subsystem produced.
  sim::CorpusConfig off = CachedConfig(sim::CachePolicy::kOff, 3);
  const std::string with_off_policy =
      CorpusFingerprint(sim::GenerateCorpus(off));
  const std::string default_config =
      CorpusFingerprint(sim::GenerateCorpus(SmallConfig()));
  EXPECT_EQ(with_off_policy, default_config);
}

TEST(SimulatorCacheTest, CachedCorpusDeterministicAcrossThreadCounts) {
  std::string baseline;
  for (const int threads : {1, 4, 8}) {
    common::SetGlobalThreads(threads);
    const std::string fp = CorpusFingerprint(
        sim::GenerateCorpus(CachedConfig(sim::CachePolicy::kUnbounded)));
    if (baseline.empty()) {
      baseline = fp;
    } else {
      EXPECT_EQ(fp, baseline)
          << "cached corpus diverged at " << threads << " threads";
    }
  }
  common::SetGlobalThreads(1);
}

TEST(SimulatorCacheTest, CachingPreservesTraceStructure) {
  // The cache changes costs and timestamps, never structure: same
  // executions (count, type, success, order), same artifacts, same hit
  // pattern on every run.
  const sim::Corpus off = sim::GenerateCorpus(SmallConfig());
  const sim::Corpus cached =
      sim::GenerateCorpus(CachedConfig(sim::CachePolicy::kUnbounded));
  ASSERT_EQ(cached.pipelines.size(), off.pipelines.size());
  for (size_t p = 0; p < off.pipelines.size(); ++p) {
    const auto& a = off.pipelines[p].store;
    const auto& b = cached.pipelines[p].store;
    ASSERT_EQ(b.num_executions(), a.num_executions());
    ASSERT_EQ(b.num_artifacts(), a.num_artifacts());
    for (size_t i = 0; i < a.executions().size(); ++i) {
      EXPECT_EQ(b.executions()[i].type, a.executions()[i].type);
      EXPECT_EQ(b.executions()[i].succeeded, a.executions()[i].succeeded);
    }
  }
}

TEST(SimulatorCacheTest, HitsAreZeroCostAndAccounted) {
  obs::Registry::Global().Reset();
  const sim::Corpus cached =
      sim::GenerateCorpus(CachedConfig(sim::CachePolicy::kUnbounded));
  size_t hits = 0;
  for (const sim::PipelineTrace& trace : cached.pipelines) {
    for (const metadata::Execution& e : trace.store.executions()) {
      if (e.properties.count("cache_hit") > 0) {
        ++hits;
        EXPECT_TRUE(e.succeeded);
        EXPECT_DOUBLE_EQ(e.compute_cost, 0.0);
      }
    }
  }
  EXPECT_GT(hits, 0u) << "the calibrated corpus has redundant work; an "
                         "unbounded cache must serve some of it";
  if (obs::kMetricsEnabled) {
    // GE, not EQ: GenerateCorpus re-simulates non-qualifying pipelines
    // (Section 2.2 filter) and the discarded attempts flushed their
    // tallies too — same convention as the failure counters.
    EXPECT_GE(obs::Registry::Global().GetCounter("cache.hits")->Value(),
              hits);
    EXPECT_GT(
        obs::Registry::Global().GetGauge("cache.saved_hours")->Value(),
        0.0);
  }
}

TEST(SimulatorCacheTest, SavedHoursMatchCostDeltaExactly) {
  // The credited saving must equal the actual drop in recorded compute
  // cost — the accounting and the corpus must never drift apart. Uses
  // SimulatePipeline directly: one pipeline, no qualify-retry loop, so
  // the registry holds exactly this trace's tallies.
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  sim::PipelineConfig pc;
  pc.pipeline_id = 1;
  pc.seed = 999;
  pc.lifespan_days = 60.0;
  pc.triggers_per_day = 2.0;
  pc.window_spans = 3;
  pc.parallel_trainers = 2;
  pc.retrain_same_data_prob = 0.3;  // plenty of stale retrains
  pc.analyzers = {metadata::AnalyzerType::kVocabulary};
  const sim::CostModel cost_model;
  auto trace_cost = [](const sim::PipelineTrace& trace) {
    double total = 0.0;
    for (const metadata::Execution& e : trace.store.executions()) {
      total += e.compute_cost;
    }
    return total;
  };
  const double baseline =
      trace_cost(sim::SimulatePipeline(SmallConfig(), pc, cost_model));
  obs::Registry::Global().Reset();
  const sim::PipelineTrace cached = sim::SimulatePipeline(
      CachedConfig(sim::CachePolicy::kUnbounded), pc, cost_model);
  const double credited =
      obs::Registry::Global().GetGauge("cache.saved_hours")->Value();
  EXPECT_GT(credited, 0.0);
  EXPECT_NEAR(credited, baseline - trace_cost(cached),
              1e-6 * std::max(1.0, baseline));
  size_t hits = 0;
  for (const metadata::Execution& e : cached.store.executions()) {
    hits += e.properties.count("cache_hit");
  }
  EXPECT_EQ(obs::Registry::Global().GetCounter("cache.hits")->Value(),
            hits);
}

TEST(SimulatorCacheTest, UnboundedSavesAtLeastAsMuchAsTinyLru) {
  const double baseline = TotalCost(sim::GenerateCorpus(SmallConfig()));
  const double tiny_lru =
      TotalCost(sim::GenerateCorpus(CachedConfig(sim::CachePolicy::kLru, 2)));
  const double unbounded = TotalCost(
      sim::GenerateCorpus(CachedConfig(sim::CachePolicy::kUnbounded)));
  EXPECT_LE(unbounded, tiny_lru);
  EXPECT_LT(unbounded, baseline);
  EXPECT_LE(tiny_lru, baseline);
}

TEST(SimulatorCacheTest, TinyLruEvictsUnderPressure) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::Registry::Global().Reset();
  const sim::Corpus corpus =
      sim::GenerateCorpus(CachedConfig(sim::CachePolicy::kLru, 2));
  (void)corpus;
  EXPECT_GT(obs::Registry::Global().GetCounter("cache.evictions")->Value(),
            0u);
}

TEST(SimulatorCacheTest, CachedTracesSegmentAndValidateClean) {
  const sim::Corpus corpus =
      sim::GenerateCorpus(CachedConfig(sim::CachePolicy::kUnbounded));
  ASSERT_GT(CountCacheHits(corpus), 0u);
  const metadata::TraceValidator validator;
  for (const sim::PipelineTrace& trace : corpus.pipelines) {
    const auto report = validator.Validate(trace.store);
    EXPECT_FALSE(report.NeedsQuarantine()) << report.Summary();
  }
  // Every trainer execution — including cache-served ones — anchors
  // exactly one graphlet.
  const core::SegmentedCorpus segmented = core::SegmentCorpus(corpus);
  for (size_t p = 0; p < corpus.pipelines.size(); ++p) {
    const auto trainers = corpus.pipelines[p].store.ExecutionsOfType(
        metadata::ExecutionType::kTrainer);
    const core::SegmentedPipeline& sp = segmented.pipelines[p];
    EXPECT_EQ(sp.quarantined_graphlets, 0u);
    ASSERT_EQ(sp.graphlets.size(), trainers.size());
    std::set<metadata::ExecutionId> anchors;
    for (const core::Graphlet& g : sp.graphlets) {
      EXPECT_TRUE(anchors.insert(g.trainer).second);
    }
    for (const metadata::ExecutionId t : trainers) {
      EXPECT_EQ(anchors.count(t), 1u);
    }
  }
}

TEST(SimulatorCacheTest, FiredFaultsAreNeverServedFromCache) {
  if (!common::kFailpointsEnabled) GTEST_SKIP() << "failpoints compiled out";
  sim::CorpusConfig config = CachedConfig(sim::CachePolicy::kUnbounded);
  auto plan = common::FaultPlan::Parse(
      "exec.trainer:transient:0.25,exec.transform:persistent:0.05");
  ASSERT_TRUE(plan.ok());
  config.fault_plan = *plan;
  config.max_retries = 2;
  const sim::Corpus corpus = sim::GenerateCorpus(config);
  size_t faulted = 0, hits = 0;
  for (const sim::PipelineTrace& trace : corpus.pipelines) {
    for (const metadata::Execution& e : trace.store.executions()) {
      const bool hit = e.properties.count("cache_hit") > 0;
      hits += hit;
      // A cache-served execution is by definition successful, and a
      // retry attempt (of a fired fault) must re-execute at full cost.
      if (hit) {
        EXPECT_TRUE(e.succeeded);
        EXPECT_EQ(e.properties.count("retry_of"), 0u);
        EXPECT_EQ(e.properties.count("retry_attempt"), 0u);
      }
      if (!e.succeeded) {
        ++faulted;
        EXPECT_FALSE(hit);
        EXPECT_GT(e.compute_cost, 0.0)
            << "failed attempts pay full cost, never a cached discount";
      }
    }
  }
  EXPECT_GT(faulted, 0u);
  EXPECT_GT(hits, 0u);
}

TEST(SimulatorCacheTest, FaultInjectedCachedCorpusIsReproducible) {
  sim::CorpusConfig config = CachedConfig(sim::CachePolicy::kLru, 64);
  auto plan = common::FaultPlan::Parse("exec.any:transient:0.1");
  ASSERT_TRUE(plan.ok());
  config.fault_plan = *plan;
  const std::string a = CorpusFingerprint(sim::GenerateCorpus(config));
  const std::string b = CorpusFingerprint(sim::GenerateCorpus(config));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace mlprov
