#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

namespace mlprov::obs {
namespace {

TEST(TraceRecorderTest, DisabledRecordsNothing) {
  TraceRecorder recorder;
  ASSERT_FALSE(recorder.enabled());
  { ScopedTimer timer("span", "test", &recorder); }
  EXPECT_EQ(recorder.NumEvents(), 0u);
}

TEST(TraceRecorderTest, RecordsCompletedSpans) {
  TraceRecorder recorder;
  recorder.Enable();
  {
    ScopedTimer timer("outer", "test", &recorder);
    EXPECT_TRUE(timer.recording());
  }
  ASSERT_EQ(recorder.NumEvents(), 1u);
  const TraceEvent event = recorder.Events()[0];
  EXPECT_EQ(event.name, "outer");
  EXPECT_EQ(event.category, "test");
  EXPECT_GT(event.tid, 0u);
}

TEST(TraceRecorderTest, NestedSpansAreContained) {
  TraceRecorder recorder;
  recorder.Enable();
  {
    ScopedTimer outer("outer", "test", &recorder);
    { ScopedTimer inner("inner", "test", &recorder); }
  }
  // Destruction order: inner completes first.
  ASSERT_EQ(recorder.NumEvents(), 2u);
  const auto events = recorder.Events();
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
}

TEST(TraceRecorderTest, SpanArgsRecorded) {
  TraceRecorder recorder;
  recorder.Enable();
  {
    ScopedTimer timer("span", "test", &recorder);
    timer.Arg("pipelines", 40).Arg("label", "x");
  }
  const auto events = recorder.Events();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[0].first, "pipelines");
  EXPECT_EQ(events[0].args[0].second.AsInt(), 40);
  EXPECT_EQ(events[0].args[1].second.AsString(), "x");
}

TEST(TraceRecorderTest, EnablingMidRunSkipsOpenSpans) {
  TraceRecorder recorder;
  {
    ScopedTimer timer("span", "test", &recorder);
    recorder.Enable();  // too late for this span
  }
  EXPECT_EQ(recorder.NumEvents(), 0u);
}

TEST(TraceRecorderTest, TimerStillTimesWhenDisabled) {
  TraceRecorder recorder;
  ScopedTimer timer("span", "test", &recorder);
  EXPECT_GE(timer.Seconds(), 0.0);
}

TEST(TraceRecorderTest, DistinctThreadIds) {
  TraceRecorder recorder;
  recorder.Enable();
  { ScopedTimer timer("main", "test", &recorder); }
  std::thread other(
      [&recorder] { ScopedTimer timer("worker", "test", &recorder); });
  other.join();
  const auto events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

void ValidateChromeTrace(const Json& root, size_t expected_spans) {
  ASSERT_TRUE(root.is_object());
  const Json* unit = root.Find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->AsString(), "ms");
  const Json* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Metadata comes first: a process_name record, then one thread_name
  // record per observed tid; the rest are complete spans.
  ASSERT_GE(events->size(), expected_spans + 1);
  const Json& meta = events->at(0);
  EXPECT_EQ(meta.Find("ph")->AsString(), "M");
  EXPECT_EQ(meta.Find("name")->AsString(), "process_name");
  size_t spans = 0;
  for (size_t i = 1; i < events->size(); ++i) {
    const Json& e = events->at(i);
    ASSERT_NE(e.Find("name"), nullptr);
    EXPECT_TRUE(e.Find("name")->is_string());
    EXPECT_TRUE(e.Find("pid")->is_number());
    EXPECT_TRUE(e.Find("tid")->is_number());
    if (e.Find("ph")->AsString() == "M") {
      EXPECT_EQ(e.Find("name")->AsString(), "thread_name");
      EXPECT_TRUE(e.Find("args")->Find("name")->is_string());
      EXPECT_EQ(spans, 0u) << "metadata interleaved with spans";
      continue;
    }
    ++spans;
    EXPECT_EQ(e.Find("ph")->AsString(), "X");
    EXPECT_TRUE(e.Find("cat")->is_string());
    EXPECT_TRUE(e.Find("ts")->is_number());
    EXPECT_TRUE(e.Find("dur")->is_number());
  }
  EXPECT_EQ(spans, expected_spans);
}

TEST(TraceRecorderTest, ToJsonIsValidChromeTraceFormat) {
  TraceRecorder recorder;
  recorder.Enable();
  {
    ScopedTimer outer("outer", "test", &recorder);
    MLPROV_SPAN_ARG(outer, "k", 1);
    { ScopedTimer inner("inner", "test", &recorder); }
  }
  // Round-trip through the serialized text, as a viewer would read it.
  const auto parsed = Json::Parse(recorder.ToJson().Dump(1));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ValidateChromeTrace(*parsed, 2);
}

TEST(TraceRecorderTest, WriteToFileRoundTrip) {
  TraceRecorder recorder;
  recorder.Enable();
  { ScopedTimer timer("span", "test", &recorder); }
  const std::string path =
      ::testing::TempDir() + "obs_trace_test_out.json";
  ASSERT_TRUE(recorder.WriteTo(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = Json::Parse(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ValidateChromeTrace(*parsed, 1);
  std::remove(path.c_str());
}

TEST(TraceRecorderTest, WriteToBadPathFails) {
  TraceRecorder recorder;
  EXPECT_FALSE(recorder.WriteTo("/nonexistent-dir/trace.json").ok());
}

TEST(TraceRecorderTest, ClearDropsEvents) {
  TraceRecorder recorder;
  recorder.Enable();
  { ScopedTimer timer("span", "test", &recorder); }
  recorder.Clear();
  EXPECT_EQ(recorder.NumEvents(), 0u);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  const double a = watch.Seconds();
  const double b = watch.Seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  watch.Restart();
  EXPECT_LE(watch.Seconds(), b + 1.0);
}

}  // namespace
}  // namespace mlprov::obs
