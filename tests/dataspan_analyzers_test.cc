#include "dataspan/analyzers.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"

namespace mlprov::dataspan {
namespace {

TEST(MomentsAnalyzerTest, MeanAndVariance) {
  MomentsAnalyzer m;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.AddSample(x);
  EXPECT_EQ(m.count(), 8);
  EXPECT_DOUBLE_EQ(m.Mean(), 5.0);
  EXPECT_NEAR(m.Variance(), 4.0, 1e-12);
  EXPECT_NEAR(m.StdDev(), 2.0, 1e-12);
}

TEST(MomentsAnalyzerTest, RetireEqualsRecompute) {
  // Rolling window: incrementally retiring samples gives the same result
  // as recomputing from scratch (the Section 4.2.1 IVM claim).
  common::Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) samples.push_back(rng.Normal(5, 2));
  MomentsAnalyzer incremental;
  const size_t window = 50;
  for (size_t i = 0; i < samples.size(); ++i) {
    incremental.AddSample(samples[i]);
    if (i >= window) incremental.RetireSample(samples[i - window]);
    if (i >= window && i % 37 == 0) {
      MomentsAnalyzer fresh;
      for (size_t j = i + 1 - window; j <= i; ++j) {
        fresh.AddSample(samples[j]);
      }
      EXPECT_NEAR(incremental.Mean(), fresh.Mean(), 1e-9);
      EXPECT_NEAR(incremental.Variance(), fresh.Variance(), 1e-9);
    }
  }
}

TEST(MomentsAnalyzerTest, MergeIsAssociative) {
  MomentsAnalyzer a, b, combined;
  for (int i = 0; i < 10; ++i) {
    a.AddSample(i);
    combined.AddSample(i);
  }
  for (int i = 10; i < 30; ++i) {
    b.AddSample(i * 0.5);
    combined.AddSample(i * 0.5);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.Mean(), combined.Mean(), 1e-12);
  EXPECT_NEAR(a.Variance(), combined.Variance(), 1e-12);
}

TEST(MinMaxAnalyzerTest, RollingWindow) {
  MinMaxAnalyzer mm;
  EXPECT_TRUE(mm.Empty());
  const size_t s1 = mm.AddSpan(1.0, 5.0);
  const size_t s2 = mm.AddSpan(-2.0, 3.0);
  EXPECT_DOUBLE_EQ(mm.Min(), -2.0);
  EXPECT_DOUBLE_EQ(mm.Max(), 5.0);
  mm.RetireSpan(s2);
  EXPECT_DOUBLE_EQ(mm.Min(), 1.0);
  EXPECT_DOUBLE_EQ(mm.Max(), 5.0);
  mm.RetireSpan(s1);
  EXPECT_TRUE(mm.Empty());
  // Slots are reused after retirement.
  const size_t s3 = mm.AddSpan(7.0, 8.0);
  EXPECT_LE(s3, 1u);
  EXPECT_DOUBLE_EQ(mm.Max(), 8.0);
}

TEST(VocabularyAnalyzerTest, TopKOrderingAndTies) {
  VocabularyAnalyzer vocab(3);
  vocab.AddTerm(10, 5);
  vocab.AddTerm(20, 9);
  vocab.AddTerm(30, 5);
  vocab.AddTerm(40, 1);
  const auto top = vocab.TopK();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 20);
  // Tie between terms 10 and 30 broken by ascending term id.
  EXPECT_EQ(top[1].first, 10);
  EXPECT_EQ(top[2].first, 30);
  EXPECT_EQ(vocab.TotalCount(), 20);
  EXPECT_EQ(vocab.NumDistinctTerms(), 4u);
}

TEST(VocabularyAnalyzerTest, RetireEqualsRecompute) {
  common::Rng rng(7);
  std::vector<int64_t> stream;
  for (int i = 0; i < 3000; ++i) stream.push_back(rng.Zipf(200, 1.2));
  const size_t window = 1000;
  VocabularyAnalyzer incremental(10);
  for (size_t i = 0; i < stream.size(); ++i) {
    incremental.AddTerm(stream[i]);
    if (i >= window) incremental.RetireTerm(stream[i - window]);
    if (i == 2500) {
      VocabularyAnalyzer fresh(10);
      for (size_t j = i + 1 - window; j <= i; ++j) {
        fresh.AddTerm(stream[j]);
      }
      EXPECT_EQ(incremental.TopK(), fresh.TopK());
      EXPECT_EQ(incremental.TotalCount(), fresh.TotalCount());
      EXPECT_EQ(incremental.NumDistinctTerms(),
                fresh.NumDistinctTerms());
    }
  }
}

TEST(VocabularyAnalyzerTest, MergeEqualsUnion) {
  VocabularyAnalyzer a(5), b(5), combined(5);
  common::Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const int64_t term = rng.Zipf(50, 1.1);
    (i % 2 ? a : b).AddTerm(term);
    combined.AddTerm(term);
  }
  a.Merge(b);
  EXPECT_EQ(a.TopK(), combined.TopK());
  EXPECT_EQ(a.TotalCount(), combined.TotalCount());
}

TEST(VocabularyAnalyzerTest, KLargerThanDistinctTerms) {
  VocabularyAnalyzer vocab(100);
  vocab.AddTerm(1, 3);
  vocab.AddTerm(2, 1);
  EXPECT_EQ(vocab.TopK().size(), 2u);
}

TEST(QuantilesAnalyzerTest, ExactBelowCapacity) {
  QuantilesAnalyzer q(100);
  for (int i = 0; i <= 50; ++i) q.AddSample(i);
  EXPECT_NEAR(q.Quantile(0.5), 25.0, 1e-9);
  EXPECT_NEAR(q.Quantile(0.0), 0.0, 1e-9);
  EXPECT_NEAR(q.Quantile(1.0), 50.0, 1e-9);
}

TEST(QuantilesAnalyzerTest, ApproximateAboveCapacity) {
  QuantilesAnalyzer q(512);
  common::Rng rng(13);
  for (int i = 0; i < 50000; ++i) q.AddSample(rng.Uniform(0, 100));
  EXPECT_EQ(q.count(), 50000);
  EXPECT_NEAR(q.Quantile(0.5), 50.0, 8.0);
  EXPECT_NEAR(q.Quantile(0.9), 90.0, 8.0);
}

TEST(QuantilesAnalyzerTest, MergePreservesDistribution) {
  QuantilesAnalyzer a(256), b(256);
  common::Rng rng(17);
  for (int i = 0; i < 5000; ++i) a.AddSample(rng.Normal(0, 1));
  for (int i = 0; i < 5000; ++i) b.AddSample(rng.Normal(10, 1));
  a.Merge(b);
  EXPECT_EQ(a.count(), 10000);
  // Median of the mixture sits between the two modes.
  EXPECT_NEAR(a.Quantile(0.5), 5.0, 4.0);
}

TEST(QuantilesAnalyzerTest, EmptyIsZero) {
  QuantilesAnalyzer q;
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 0.0);
  EXPECT_EQ(q.count(), 0);
}

/// Property sweep: for every window size, the incremental vocabulary over
/// a rolling window must exactly match recomputation from scratch.
class VocabularyWindowTest : public ::testing::TestWithParam<size_t> {};

TEST_P(VocabularyWindowTest, IncrementalMatchesRecompute) {
  const size_t window = GetParam();
  common::Rng rng(23 + window);
  std::vector<int64_t> stream;
  for (size_t i = 0; i < window * 4 + 100; ++i) {
    stream.push_back(rng.Zipf(64, 1.3));
  }
  VocabularyAnalyzer incremental(8);
  for (size_t i = 0; i < stream.size(); ++i) {
    incremental.AddTerm(stream[i]);
    if (i >= window) incremental.RetireTerm(stream[i - window]);
  }
  VocabularyAnalyzer fresh(8);
  for (size_t j = stream.size() - window; j < stream.size(); ++j) {
    fresh.AddTerm(stream[j]);
  }
  EXPECT_EQ(incremental.TopK(), fresh.TopK());
  EXPECT_EQ(incremental.TotalCount(), fresh.TotalCount());
}

INSTANTIATE_TEST_SUITE_P(Windows, VocabularyWindowTest,
                         ::testing::Values(1, 2, 8, 32, 128));

}  // namespace
}  // namespace mlprov::dataspan
