#include <cmath>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/features.h"
#include "core/graphlet_analysis.h"
#include "core/waste_mitigation.h"
#include "simulator/corpus_generator.h"
#include "stream/online_scorer.h"
#include "stream/replay.h"
#include "stream/session.h"

namespace mlprov::stream {
namespace {

/// The warm-up corpus the scorer trains on and the (different-seed)
/// corpus the streaming sessions score.
sim::CorpusConfig TrainConfig() {
  sim::CorpusConfig config;
  config.num_pipelines = 16;
  config.seed = 900;
  config.horizon_days = 45.0;
  return config;
}

sim::CorpusConfig EvalConfig() {
  sim::CorpusConfig config = TrainConfig();
  config.num_pipelines = 6;
  config.seed = 901;
  return config;
}

class StreamScorerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    train_corpus_ = new sim::Corpus(sim::GenerateCorpus(TrainConfig()));
    auto segmented = core::SegmentCorpus(*train_corpus_);
    auto dataset = core::BuildWasteDataset(*train_corpus_, segmented);
    ASSERT_TRUE(dataset.ok()) << dataset.status();
    dataset_ = new core::WasteDataset(std::move(dataset).value());
    eval_corpus_ = new sim::Corpus(sim::GenerateCorpus(EvalConfig()));
  }
  static void TearDownTestSuite() {
    delete train_corpus_;
    delete dataset_;
    delete eval_corpus_;
    train_corpus_ = nullptr;
    dataset_ = nullptr;
    eval_corpus_ = nullptr;
  }

  static sim::Corpus* train_corpus_;
  static core::WasteDataset* dataset_;
  static sim::Corpus* eval_corpus_;
};

sim::Corpus* StreamScorerTest::train_corpus_ = nullptr;
core::WasteDataset* StreamScorerTest::dataset_ = nullptr;
sim::Corpus* StreamScorerTest::eval_corpus_ = nullptr;

/// Replays the eval corpus through scoring sessions and returns the
/// per-pipeline results.
std::vector<SessionResult> ScoreCorpus(const sim::Corpus& corpus,
                                       const OnlineScorer& scorer,
                                       double seal_grace_hours = 24.0) {
  std::vector<SessionResult> results;
  for (const sim::PipelineTrace& trace : corpus.pipelines) {
    SessionOptions options;
    options.scorer = &scorer;
    options.segmenter.seal_grace_hours = seal_grace_hours;
    ProvenanceSession session(options);
    EXPECT_TRUE(ReplayTrace(trace, session).ok());
    auto result = session.Finish();
    EXPECT_TRUE(result.ok()) << result.status();
    results.push_back(std::move(result).value());
  }
  return results;
}

TEST_F(StreamScorerTest, TrainRejectsBadInputs) {
  core::WasteDataset empty;
  EXPECT_EQ(OnlineScorer::Train(empty).status().code(),
            common::StatusCode::kInvalidArgument);

  OnlineScorerOptions options;
  options.policy_variant = core::Variant::kValidation;
  EXPECT_EQ(OnlineScorer::Train(*dataset_, options).status().code(),
            common::StatusCode::kInvalidArgument);

  // Feature options that disagree with the dataset's schema are refused
  // (the row layout would silently misalign).
  OnlineScorerOptions mismatched;
  mismatched.features.history_window = 7;
  EXPECT_EQ(OnlineScorer::Train(*dataset_, mismatched).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST_F(StreamScorerTest, EveryGraphletGetsOneSettledDecision) {
  auto scorer = OnlineScorer::Train(*dataset_);
  ASSERT_TRUE(scorer.ok()) << scorer.status();
  const auto results = ScoreCorpus(*eval_corpus_, *scorer);

  size_t total_decisions = 0;
  for (const SessionResult& result : results) {
    ASSERT_EQ(result.decisions.size(), result.graphlets.size());
    total_decisions += result.decisions.size();

    // Decisions come in cell (trainer-arrival) order; match them to
    // graphlets by trainer id for the ground-truth checks.
    std::unordered_map<metadata::ExecutionId, const core::Graphlet*>
        by_trainer;
    for (const core::Graphlet& g : result.graphlets) {
      by_trainer[g.trainer] = &g;
    }

    size_t aborts = 0, lost = 0;
    double avoided = 0.0;
    for (const ScoreDecision& d : result.decisions) {
      EXPECT_TRUE(d.settled);
      ASSERT_TRUE(by_trainer.count(d.trainer));
      const core::Graphlet& g = *by_trainer[d.trainer];
      EXPECT_EQ(d.pushed, g.pushed);
      EXPECT_EQ(d.variant, core::Variant::kInput);  // default policy
      EXPECT_GE(d.score, 0.0);
      EXPECT_LE(d.score, 1.0);
      EXPECT_DOUBLE_EQ(d.threshold,
                       scorer->Threshold(core::Variant::kInput));
      EXPECT_EQ(d.abort, d.score < d.threshold);
      if (d.abort) {
        // Aborting before the trainer always saves its (positive) cost.
        EXPECT_GT(d.avoided_hours, 0.0);
        EXPECT_EQ(d.lost_push, d.pushed);
        ++aborts;
        lost += d.lost_push ? 1 : 0;
        avoided += d.avoided_hours;
      } else {
        EXPECT_EQ(d.avoided_hours, 0.0);
        EXPECT_FALSE(d.lost_push);
      }
    }
    EXPECT_EQ(result.waste.decisions, result.decisions.size());
    EXPECT_EQ(result.waste.aborts, aborts);
    EXPECT_EQ(result.waste.lost_pushes, lost);
    EXPECT_DOUBLE_EQ(result.waste.avoided_hours, avoided);
  }
  EXPECT_GT(total_decisions, 0u);
}

TEST_F(StreamScorerTest, InterventionPointsAreObservedInFeedOrder) {
  auto scorer = OnlineScorer::Train(*dataset_);
  ASSERT_TRUE(scorer.ok()) << scorer.status();
  const auto results = ScoreCorpus(*eval_corpus_, *scorer);

  size_t early = 0, trainer_stage = 0;
  for (const SessionResult& result : results) {
    std::unordered_map<metadata::ExecutionId, const core::Graphlet*>
        by_trainer;
    for (const core::Graphlet& g : result.graphlets) {
      by_trainer[g.trainer] = &g;
    }
    for (const ScoreDecision& d : result.decisions) {
      const core::Graphlet& g = *by_trainer[d.trainer];
      // A pushed graphlet had a live trainer with outputs and
      // downstream consumers: every streaming variant was scored at its
      // intervention point, not late at seal time.
      if (g.pushed) {
        EXPECT_TRUE(d.variant_scored[0]);
        EXPECT_TRUE(d.variant_scored[1]);
        EXPECT_TRUE(d.variant_scored[2]);
      }
      early += d.variant_scored[0] ? 1 : 0;
      trainer_stage += d.variant_scored[2] ? 1 : 0;
      // Scores exist for all three variants either way.
      for (int v = 0; v < 3; ++v) {
        EXPECT_TRUE(std::isfinite(d.variant_scores[v]));
      }
    }
  }
  EXPECT_GT(early, 0u);
  EXPECT_GT(trainer_stage, 0u);
}

TEST_F(StreamScorerTest, DecisionsAreDeterministicAcrossReplays) {
  auto scorer = OnlineScorer::Train(*dataset_);
  ASSERT_TRUE(scorer.ok()) << scorer.status();
  const auto a = ScoreCorpus(*eval_corpus_, *scorer);
  const auto b = ScoreCorpus(*eval_corpus_, *scorer);
  ASSERT_EQ(a.size(), b.size());
  for (size_t p = 0; p < a.size(); ++p) {
    ASSERT_EQ(a[p].decisions.size(), b[p].decisions.size());
    for (size_t i = 0; i < a[p].decisions.size(); ++i) {
      EXPECT_EQ(a[p].decisions[i].trainer, b[p].decisions[i].trainer);
      EXPECT_EQ(a[p].decisions[i].score, b[p].decisions[i].score);
      EXPECT_EQ(a[p].decisions[i].abort, b[p].decisions[i].abort);
      EXPECT_EQ(a[p].decisions[i].avoided_hours,
                b[p].decisions[i].avoided_hours);
      for (int v = 0; v < 3; ++v) {
        EXPECT_EQ(a[p].decisions[i].variant_scores[v],
                  b[p].decisions[i].variant_scores[v]);
      }
    }
    EXPECT_EQ(a[p].waste.aborts, b[p].waste.aborts);
    EXPECT_EQ(a[p].waste.avoided_hours, b[p].waste.avoided_hours);
  }
}

TEST_F(StreamScorerTest, LaterPolicyVariantAvoidsFewerHoursPerAbort) {
  // Acting at Input+Pre+Trainer leaves only the validation stage to
  // skip, so each abort avoids strictly less than an Input-stage abort
  // would on the same graphlet (stage costs are cumulative).
  OnlineScorerOptions late;
  late.policy_variant = core::Variant::kInputPreTrainer;
  auto scorer = OnlineScorer::Train(*dataset_, late);
  ASSERT_TRUE(scorer.ok()) << scorer.status();
  const auto results = ScoreCorpus(*eval_corpus_, *scorer);
  for (const SessionResult& result : results) {
    std::unordered_map<metadata::ExecutionId, const core::Graphlet*>
        by_trainer;
    for (const core::Graphlet& g : result.graphlets) {
      by_trainer[g.trainer] = &g;
    }
    for (const ScoreDecision& d : result.decisions) {
      EXPECT_EQ(d.variant, core::Variant::kInputPreTrainer);
      if (!d.abort) continue;
      const core::Graphlet& g = *by_trainer[d.trainer];
      // Avoided hours exclude everything up to and including the
      // trainer: they must be at most the post-trainer cost.
      EXPECT_LE(d.avoided_hours, g.post_trainer_cost + 1e-9);
    }
  }
}

TEST_F(StreamScorerTest, ScoringDoesNotPerturbSegmentation) {
  auto scorer = OnlineScorer::Train(*dataset_);
  ASSERT_TRUE(scorer.ok()) << scorer.status();
  for (const sim::PipelineTrace& trace : eval_corpus_->pipelines) {
    SessionOptions scored;
    scored.scorer = &*scorer;
    scored.segmenter.seal_grace_hours = 24.0;
    ProvenanceSession with_scorer(scored);
    ASSERT_TRUE(ReplayTrace(trace, with_scorer).ok());

    ProvenanceSession plain;
    ASSERT_TRUE(ReplayTrace(trace, plain).ok());

    auto a = with_scorer.Finish();
    auto b = plain.Finish();
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->graphlets.size(), b->graphlets.size());
    for (size_t i = 0; i < a->graphlets.size(); ++i) {
      EXPECT_EQ(a->graphlets[i].trainer, b->graphlets[i].trainer);
      EXPECT_EQ(a->graphlets[i].executions, b->graphlets[i].executions);
      EXPECT_EQ(a->graphlets[i].artifacts, b->graphlets[i].artifacts);
    }
  }
}

}  // namespace
}  // namespace mlprov::stream
