#!/usr/bin/env bash
# Header self-sufficiency check: every public header under src/ must
# compile as its own translation unit (no hidden dependency on includes
# a particular .cc happens to pull in first). This is what makes the
# library surface consumable piecemeal — e.g. a downstream tool that
# wants stream/session.h must not be forced to discover an include
# order by trial and error.
#
# Usage: scripts/check_header_selfcontained.sh [repo-root]  (default: cwd)
set -euo pipefail

root="${1:-.}"
cd "$root"

cxx="${CXX:-g++}"
failed=0
count=0
for header in $(find src -name '*.h' | sort); do
  count=$((count + 1))
  if ! "$cxx" -std=c++20 -fsyntax-only -I src -x c++ "$header" 2>/tmp/header_check_err; then
    echo "NOT SELF-CONTAINED: $header" >&2
    sed 's/^/    /' /tmp/header_check_err >&2
    failed=1
  fi
done

if [ "$failed" -ne 0 ]; then
  echo "header self-sufficiency check FAILED" >&2
  exit 1
fi
echo "header self-sufficiency check ok: ${count} headers compile standalone"
