#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by --trace_out=.

Structural checks (always on):
  * top-level object has a "traceEvents" array with at least one event
  * every complete ("X") event carries name/cat/ts/dur/pid/tid with
    non-negative ts and dur
  * every duration ("B"/"E") pair balances per (pid, tid) stack
  * every flow event ("s"/"t"/"f") carries an id; per flow id the
    sequence must start with "s", never continue after "f", and keep
    non-decreasing timestamps ("t"/"f" before any "s", or any event
    after "f", is an error; an "s" with no closing "f" is only a
    warning -- aborted work legitimately leaves dangling flows)
  * metadata ("M") events carry args.name

Semantic checks (opt-in, used by CI on a fault-injected cache-enabled
bench run):
  --expect-chain  at least one complete causal chain on category
                  "flow.causal": exec (s) -> arrival (t) -> seal (t)
                  -> decision (f)
  --expect-retry  at least one retry link on "flow.retry":
                  attempt (s) -> retry (f)
  --expect-cache  at least one memoization link on "flow.cache":
                  origin (s) -> hit (f)

Exit status: 0 when every check passes (warnings allowed), 1 otherwise.
"""

import argparse
import collections
import json
import sys

FLOW_PHASES = ("s", "t", "f")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="path to a --trace_out= JSON file")
    parser.add_argument("--expect-chain", action="store_true",
                        help="require a complete causal chain")
    parser.add_argument("--expect-retry", action="store_true",
                        help="require a retry flow link")
    parser.add_argument("--expect-cache", action="store_true",
                        help="require a cache-hit flow link")
    args = parser.parse_args()

    with open(args.trace, encoding="utf-8") as fh:
        trace = json.load(fh)

    errors = []
    warnings = []

    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        print(f"error: {args.trace}: empty or missing traceEvents",
              file=sys.stderr)
        return 1

    spans = 0
    metadata = 0
    stacks = collections.defaultdict(list)  # (pid, tid) -> [names]
    flows = collections.defaultdict(list)   # (cat, id) -> [(ph, name, ts)]

    for i, event in enumerate(events):
        where = f"event {i}"
        ph = event.get("ph")
        if ph is None:
            errors.append(f"{where}: missing ph")
            continue
        if ph == "X":
            spans += 1
            missing = {"name", "cat", "ts", "dur", "pid", "tid"} - set(event)
            if missing:
                errors.append(f"{where} (X {event.get('name')}): "
                              f"missing {sorted(missing)}")
                continue
            if event["ts"] < 0 or event["dur"] < 0:
                errors.append(f"{where} (X {event['name']}): negative "
                              f"ts/dur {event['ts']}/{event['dur']}")
        elif ph == "B":
            stacks[(event.get("pid"), event.get("tid"))].append(
                event.get("name"))
        elif ph == "E":
            stack = stacks[(event.get("pid"), event.get("tid"))]
            if not stack:
                errors.append(f"{where}: E without matching B")
            else:
                stack.pop()
        elif ph in FLOW_PHASES:
            missing = {"name", "cat", "ts", "pid", "tid", "id"} - set(event)
            if missing:
                errors.append(f"{where} ({ph} {event.get('name')}): "
                              f"missing {sorted(missing)}")
                continue
            if ph == "f" and event.get("bp") != "e":
                errors.append(f"{where} (f {event['name']}): missing "
                              f'bp:"e" (enclosing-slice binding)')
            flows[(event["cat"], event["id"])].append(
                (ph, event["name"], event["ts"]))
        elif ph == "M":
            metadata += 1
            if "name" not in event.get("args", {}):
                errors.append(f"{where}: metadata event without args.name")
        else:
            warnings.append(f"{where}: unknown phase {ph!r}")

    for key, stack in stacks.items():
        if stack:
            errors.append(f"pid/tid {key}: {len(stack)} unclosed B events "
                          f"(top: {stack[-1]})")

    # Flow discipline per (category, bind id).
    dangling = 0
    for (cat, flow_id), steps in flows.items():
        label = f"flow {cat}/{flow_id:#x}"
        finished = False
        last_ts = None
        if steps[0][0] != "s":
            errors.append(f"{label}: starts with {steps[0][0]!r} "
                          f"({steps[0][1]}), not 's'")
            continue
        for ph, name, ts in steps:
            if finished:
                errors.append(f"{label}: {ph} ({name}) after finish")
                break
            if last_ts is not None and ts < last_ts:
                errors.append(f"{label}: timestamps regress at "
                              f"{ph} ({name}): {ts} < {last_ts}")
            last_ts = ts
            if ph == "f":
                finished = True
        if not finished:
            dangling += 1
    if dangling:
        warnings.append(f"{dangling} flows never finish (dangling 's'; "
                        f"expected for aborted or still-open work)")

    def have_sequence(category: str, sequence: list) -> bool:
        for (cat, _), steps in flows.items():
            if cat != category:
                continue
            if [(ph, name) for ph, name, _ in steps] == sequence:
                return True
        return False

    if args.expect_chain and not have_sequence(
            "flow.causal",
            [("s", "exec"), ("t", "arrival"), ("t", "seal"),
             ("f", "decision")]):
        errors.append("no complete causal chain "
                      "exec -> arrival -> seal -> decision on flow.causal")
    if args.expect_retry and not have_sequence(
            "flow.retry", [("s", "attempt"), ("f", "retry")]):
        errors.append("no retry link attempt -> retry on flow.retry")
    if args.expect_cache and not have_sequence(
            "flow.cache", [("s", "origin"), ("f", "hit")]):
        errors.append("no cache link origin -> hit on flow.cache")

    for message in warnings:
        print(f"warning: {message}")
    for message in errors:
        print(f"error: {message}", file=sys.stderr)
    counts = collections.Counter(ph for steps in flows.values()
                                 for ph, _, _ in steps)
    print(f"{args.trace}: {spans} spans, {len(flows)} flows "
          f"({counts.get('s', 0)} s / {counts.get('t', 0)} t / "
          f"{counts.get('f', 0)} f), {metadata} metadata events, "
          f"{len(errors)} errors, {len(warnings)} warnings")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
