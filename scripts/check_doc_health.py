#!/usr/bin/env python3
"""Doc-health check: dead intra-repo links and untagged code fences.

Scans the top-level narrative docs (README.md, DESIGN.md, EXPERIMENTS.md,
ROADMAP.md) for:

  * Markdown links whose target is a repo-relative path that does not
    exist, or whose #fragment does not match any heading anchor in the
    target document (GitHub slug rules: lowercase, punctuation stripped,
    spaces to hyphens, -N suffixes for duplicates).
  * Fenced code blocks whose opening fence carries no language tag; an
    untagged fence renders without highlighting and usually means a
    typo'd or hastily pasted block.

External links (http/https/mailto) are not fetched — this check is
hermetic and only guards what a repo edit can break.

Usage: scripts/check_doc_health.py [repo-root]   (default: cwd)
Exits non-zero if any problem is found, listing every offender.
"""

import os
import re
import sys

DOCS = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
FENCE_RE = re.compile(r"^(\s*)(`{3,}|~{3,})(.*)$")


def slugify(heading, seen):
    """GitHub-style anchor slug, with -N deduplication."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # drop code spans' backticks
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # inline links
    slug = text.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    slug = slug.replace(" ", "-")
    if slug in seen:
        seen[slug] += 1
        return f"{slug}-{seen[slug]}"
    seen[slug] = 0
    return slug


def scan(path):
    """Returns (anchors, links, untagged_fences) for one markdown file.

    links are (lineno, target) outside code fences; untagged_fences are
    line numbers of opening fences with no language tag.
    """
    anchors = set()
    links = []
    untagged = []
    seen = {}
    in_fence = False
    fence_marker = ""
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            fence = FENCE_RE.match(line.rstrip("\n"))
            if fence:
                marker, info = fence.group(2), fence.group(3).strip()
                if not in_fence:
                    in_fence = True
                    fence_marker = marker[0] * 3
                    if not info:
                        untagged.append(lineno)
                elif marker.startswith(fence_marker) and not info:
                    in_fence = False
                continue
            if in_fence:
                continue
            heading = HEADING_RE.match(line)
            if heading:
                anchors.add(slugify(heading.group(2), seen))
            for match in LINK_RE.finditer(line):
                links.append((lineno, match.group(1)))
    return anchors, links, untagged


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    os.chdir(root)
    docs = [d for d in DOCS if os.path.exists(d)]
    scanned = {d: scan(d) for d in docs}
    anchor_cache = {d: scanned[d][0] for d in docs}
    problems = []

    for doc in docs:
        _, links, untagged = scanned[doc]
        for lineno in untagged:
            problems.append(
                f"{doc}:{lineno}: code fence without a language tag")
        for lineno, target in links:
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path, _, fragment = target.partition("#")
            if path:
                if not os.path.exists(path):
                    problems.append(
                        f"{doc}:{lineno}: dead link — {path} does not exist")
                    continue
                anchor_doc = path
            else:
                anchor_doc = doc
            if not fragment or not anchor_doc.endswith(".md"):
                continue
            if anchor_doc not in anchor_cache:
                if not os.path.exists(anchor_doc):
                    continue  # existence already verified above
                anchor_cache[anchor_doc] = scan(anchor_doc)[0]
            if fragment.lower() not in anchor_cache[anchor_doc]:
                problems.append(
                    f"{doc}:{lineno}: dead anchor — "
                    f"{anchor_doc}#{fragment} matches no heading")

    total_links = sum(len(scanned[d][1]) for d in docs)
    if problems:
        for p in problems:
            print(p, file=sys.stderr)
        print(f"doc-health check FAILED: {len(problems)} problem(s) across "
              f"{len(docs)} docs", file=sys.stderr)
        return 1
    print(f"doc-health check ok: {len(docs)} docs, {total_links} links, "
          f"all fences tagged")
    return 0


if __name__ == "__main__":
    sys.exit(main())
