#!/usr/bin/env bash
# Docs-consistency check: every command-line flag read anywhere in the
# codebase must be documented (as --<name>) in README.md or DESIGN.md,
# and every CMake build option must be mentioned in the docs too.
#
# Flag reads are located syntactically:
#   * any Flags accessor call of the form
#     Get{Int,Double,String,Bool,IntStrict}("name") or Has("name") in
#     src/, bench/, or examples/;
#   * any IntFlagOrDie(flags, "name", ...) call — the bench harness's
#     strict-integer wrapper, whose accessor call holds the flag name in
#     a variable and is therefore invisible to the pattern above.
# The --threads flag is read indirectly through common::ThreadsFromFlags
# (its name is a default argument, not a literal at the call site), so
# it is added explicitly.
#
# Build options are located in the top-level CMakeLists.txt as
# option(MLPROV_* ...) declarations; each must appear by name in
# README.md or DESIGN.md so a reader can discover the knob.
#
# Usage: scripts/check_flag_docs.sh [repo-root]   (default: cwd)
set -euo pipefail

root="${1:-.}"
cd "$root"

flags=$(
  {
    grep -rhoE \
      '(GetInt|GetDouble|GetString|GetBool|GetIntStrict|Has)\("[a-z][a-z_0-9]*"' \
      src bench examples 2>/dev/null |
      sed -E 's/.*\("([a-z][a-z_0-9]*)"/\1/'
    grep -rhoE 'IntFlagOrDie\([a-z_]+, "[a-z][a-z_0-9]*"' \
      src bench examples 2>/dev/null |
      sed -E 's/.*"([a-z][a-z_0-9]*)"/\1/'
    echo threads
  } | sort -u
)

missing=0
for flag in $flags; do
  if ! grep -qE -- "--${flag}\b" README.md DESIGN.md; then
    echo "UNDOCUMENTED FLAG: --${flag} (read in sources, absent from README.md and DESIGN.md)" >&2
    missing=1
  fi
done

build_options=$(
  grep -hoE '^option\(MLPROV_[A-Z_0-9]+' CMakeLists.txt |
    sed -E 's/^option\(//' | sort -u
)
for opt in $build_options; do
  if ! grep -q -- "$opt" README.md DESIGN.md; then
    echo "UNDOCUMENTED BUILD OPTION: ${opt} (declared in CMakeLists.txt, absent from README.md and DESIGN.md)" >&2
    missing=1
  fi
done

flag_count=$(echo "$flags" | wc -w)
option_count=$(echo "$build_options" | wc -w)
if [ "$missing" -ne 0 ]; then
  echo "flag-docs check FAILED: document the flags/options above in README.md or DESIGN.md" >&2
  exit 1
fi
echo "flag-docs check ok: all ${flag_count} flags and ${option_count} build options documented"
