#!/usr/bin/env bash
# Docs-consistency check: every command-line flag read anywhere in the
# codebase must be documented (as --<name>) in README.md or DESIGN.md.
#
# Flag reads are located syntactically: any Flags accessor call of the
# form Get{Int,Double,String,Bool,IntStrict}("name") or Has("name") in
# src/, bench/, or examples/. The --threads flag is read indirectly
# through common::ThreadsFromFlags (its name is a default argument, not
# a literal at the call site), so it is added explicitly.
#
# Usage: scripts/check_flag_docs.sh [repo-root]   (default: cwd)
set -euo pipefail

root="${1:-.}"
cd "$root"

flags=$(
  {
    grep -rhoE \
      '(GetInt|GetDouble|GetString|GetBool|GetIntStrict|Has)\("[a-z][a-z_0-9]*"' \
      src bench examples 2>/dev/null |
      sed -E 's/.*\("([a-z][a-z_0-9]*)"/\1/'
    echo threads
  } | sort -u
)

missing=0
for flag in $flags; do
  if ! grep -qE -- "--${flag}\b" README.md DESIGN.md; then
    echo "UNDOCUMENTED FLAG: --${flag} (read in sources, absent from README.md and DESIGN.md)" >&2
    missing=1
  fi
done

count=$(echo "$flags" | wc -w)
if [ "$missing" -ne 0 ]; then
  echo "flag-docs check FAILED: document the flags above in README.md or DESIGN.md" >&2
  exit 1
fi
echo "flag-docs check ok: all ${count} flags documented"
