file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_similarity.dir/bench_table1_similarity.cc.o"
  "CMakeFiles/bench_table1_similarity.dir/bench_table1_similarity.cc.o.d"
  "bench_table1_similarity"
  "bench_table1_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
