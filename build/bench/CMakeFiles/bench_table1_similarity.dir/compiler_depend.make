# Empty compiler generated dependencies file for bench_table1_similarity.
# This may be replaced when dependencies are built.
