file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_cadence.dir/bench_fig9_cadence.cc.o"
  "CMakeFiles/bench_fig9_cadence.dir/bench_fig9_cadence.cc.o.d"
  "bench_fig9_cadence"
  "bench_fig9_cadence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_cadence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
