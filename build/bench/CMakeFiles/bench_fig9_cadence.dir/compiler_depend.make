# Empty compiler generated dependencies file for bench_fig9_cadence.
# This may be replaced when dependencies are built.
