file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_classifier.dir/bench_table3_classifier.cc.o"
  "CMakeFiles/bench_table3_classifier.dir/bench_table3_classifier.cc.o.d"
  "bench_table3_classifier"
  "bench_table3_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
