
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_model_mix.cc" "bench/CMakeFiles/bench_fig5_model_mix.dir/bench_fig5_model_mix.cc.o" "gcc" "bench/CMakeFiles/bench_fig5_model_mix.dir/bench_fig5_model_mix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mlprov_core.dir/DependInfo.cmake"
  "/root/repo/build/src/similarity/CMakeFiles/mlprov_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/simulator/CMakeFiles/mlprov_simulator.dir/DependInfo.cmake"
  "/root/repo/build/src/metadata/CMakeFiles/mlprov_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/dataspan/CMakeFiles/mlprov_dataspan.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/mlprov_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlprov_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
