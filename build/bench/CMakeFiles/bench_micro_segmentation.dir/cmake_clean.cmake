file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_segmentation.dir/bench_micro_segmentation.cc.o"
  "CMakeFiles/bench_micro_segmentation.dir/bench_micro_segmentation.cc.o.d"
  "bench_micro_segmentation"
  "bench_micro_segmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
