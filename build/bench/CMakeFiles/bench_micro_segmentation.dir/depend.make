# Empty dependencies file for bench_micro_segmentation.
# This may be replaced when dependencies are built.
