# Empty dependencies file for bench_fig4_analyzers.
# This may be replaced when dependencies are built.
