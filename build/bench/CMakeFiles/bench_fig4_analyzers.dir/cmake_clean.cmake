file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_analyzers.dir/bench_fig4_analyzers.cc.o"
  "CMakeFiles/bench_fig4_analyzers.dir/bench_fig4_analyzers.cc.o.d"
  "bench_fig4_analyzers"
  "bench_fig4_analyzers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_analyzers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
