# Empty dependencies file for bench_fig3_data_complexity.
# This may be replaced when dependencies are built.
