# Empty compiler generated dependencies file for bench_micro_analyzers.
# This may be replaced when dependencies are built.
