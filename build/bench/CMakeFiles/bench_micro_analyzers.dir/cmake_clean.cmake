file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_analyzers.dir/bench_micro_analyzers.cc.o"
  "CMakeFiles/bench_micro_analyzers.dir/bench_micro_analyzers.cc.o.d"
  "bench_micro_analyzers"
  "bench_micro_analyzers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_analyzers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
