file(REMOVE_RECURSE
  "CMakeFiles/bench_policy_replay.dir/bench_policy_replay.cc.o"
  "CMakeFiles/bench_policy_replay.dir/bench_policy_replay.cc.o.d"
  "bench_policy_replay"
  "bench_policy_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_policy_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
