# Empty dependencies file for bench_policy_replay.
# This may be replaced when dependencies are built.
