file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_push_drivers.dir/bench_table2_push_drivers.cc.o"
  "CMakeFiles/bench_table2_push_drivers.dir/bench_table2_push_drivers.cc.o.d"
  "bench_table2_push_drivers"
  "bench_table2_push_drivers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_push_drivers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
