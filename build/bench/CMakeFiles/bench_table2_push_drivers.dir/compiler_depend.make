# Empty compiler generated dependencies file for bench_table2_push_drivers.
# This may be replaced when dependencies are built.
