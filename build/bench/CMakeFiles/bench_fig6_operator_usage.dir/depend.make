# Empty dependencies file for bench_fig6_operator_usage.
# This may be replaced when dependencies are built.
