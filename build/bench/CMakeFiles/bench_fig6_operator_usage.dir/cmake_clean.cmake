file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_operator_usage.dir/bench_fig6_operator_usage.cc.o"
  "CMakeFiles/bench_fig6_operator_usage.dir/bench_fig6_operator_usage.cc.o.d"
  "bench_fig6_operator_usage"
  "bench_fig6_operator_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_operator_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
