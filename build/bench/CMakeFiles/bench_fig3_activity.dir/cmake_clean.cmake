file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_activity.dir/bench_fig3_activity.cc.o"
  "CMakeFiles/bench_fig3_activity.dir/bench_fig3_activity.cc.o.d"
  "bench_fig3_activity"
  "bench_fig3_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
