# Empty dependencies file for bench_fig3_activity.
# This may be replaced when dependencies are built.
