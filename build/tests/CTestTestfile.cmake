# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_status_test[1]_include.cmake")
include("/root/repo/build/tests/common_rng_test[1]_include.cmake")
include("/root/repo/build/tests/common_stats_test[1]_include.cmake")
include("/root/repo/build/tests/metadata_store_test[1]_include.cmake")
include("/root/repo/build/tests/metadata_trace_test[1]_include.cmake")
include("/root/repo/build/tests/metadata_serialization_test[1]_include.cmake")
include("/root/repo/build/tests/dataspan_test[1]_include.cmake")
include("/root/repo/build/tests/similarity_emd_test[1]_include.cmake")
include("/root/repo/build/tests/similarity_span_test[1]_include.cmake")
include("/root/repo/build/tests/ml_dataset_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/ml_models_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/core_datalog_test[1]_include.cmake")
include("/root/repo/build/tests/core_segmentation_test[1]_include.cmake")
include("/root/repo/build/tests/common_flags_test[1]_include.cmake")
include("/root/repo/build/tests/core_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/core_waste_test[1]_include.cmake")
include("/root/repo/build/tests/dataspan_analyzers_test[1]_include.cmake")
include("/root/repo/build/tests/core_policy_test[1]_include.cmake")
include("/root/repo/build/tests/similarity_property_test[1]_include.cmake")
