file(REMOVE_RECURSE
  "CMakeFiles/dataspan_test.dir/dataspan_test.cc.o"
  "CMakeFiles/dataspan_test.dir/dataspan_test.cc.o.d"
  "dataspan_test"
  "dataspan_test.pdb"
  "dataspan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataspan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
