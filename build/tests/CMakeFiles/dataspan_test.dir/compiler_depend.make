# Empty compiler generated dependencies file for dataspan_test.
# This may be replaced when dependencies are built.
