file(REMOVE_RECURSE
  "CMakeFiles/core_waste_test.dir/core_waste_test.cc.o"
  "CMakeFiles/core_waste_test.dir/core_waste_test.cc.o.d"
  "core_waste_test"
  "core_waste_test.pdb"
  "core_waste_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_waste_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
