# Empty dependencies file for core_waste_test.
# This may be replaced when dependencies are built.
