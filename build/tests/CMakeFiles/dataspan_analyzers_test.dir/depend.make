# Empty dependencies file for dataspan_analyzers_test.
# This may be replaced when dependencies are built.
