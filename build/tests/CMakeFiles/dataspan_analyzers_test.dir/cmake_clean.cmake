file(REMOVE_RECURSE
  "CMakeFiles/dataspan_analyzers_test.dir/dataspan_analyzers_test.cc.o"
  "CMakeFiles/dataspan_analyzers_test.dir/dataspan_analyzers_test.cc.o.d"
  "dataspan_analyzers_test"
  "dataspan_analyzers_test.pdb"
  "dataspan_analyzers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataspan_analyzers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
