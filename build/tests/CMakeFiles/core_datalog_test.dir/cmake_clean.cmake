file(REMOVE_RECURSE
  "CMakeFiles/core_datalog_test.dir/core_datalog_test.cc.o"
  "CMakeFiles/core_datalog_test.dir/core_datalog_test.cc.o.d"
  "core_datalog_test"
  "core_datalog_test.pdb"
  "core_datalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_datalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
