# Empty compiler generated dependencies file for core_datalog_test.
# This may be replaced when dependencies are built.
