file(REMOVE_RECURSE
  "CMakeFiles/metadata_trace_test.dir/metadata_trace_test.cc.o"
  "CMakeFiles/metadata_trace_test.dir/metadata_trace_test.cc.o.d"
  "metadata_trace_test"
  "metadata_trace_test.pdb"
  "metadata_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadata_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
