# Empty compiler generated dependencies file for metadata_trace_test.
# This may be replaced when dependencies are built.
