# Empty dependencies file for similarity_span_test.
# This may be replaced when dependencies are built.
