file(REMOVE_RECURSE
  "CMakeFiles/similarity_span_test.dir/similarity_span_test.cc.o"
  "CMakeFiles/similarity_span_test.dir/similarity_span_test.cc.o.d"
  "similarity_span_test"
  "similarity_span_test.pdb"
  "similarity_span_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similarity_span_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
