file(REMOVE_RECURSE
  "CMakeFiles/core_segmentation_test.dir/core_segmentation_test.cc.o"
  "CMakeFiles/core_segmentation_test.dir/core_segmentation_test.cc.o.d"
  "core_segmentation_test"
  "core_segmentation_test.pdb"
  "core_segmentation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_segmentation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
