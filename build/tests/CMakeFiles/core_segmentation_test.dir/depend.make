# Empty dependencies file for core_segmentation_test.
# This may be replaced when dependencies are built.
