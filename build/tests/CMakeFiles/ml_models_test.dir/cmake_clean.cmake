file(REMOVE_RECURSE
  "CMakeFiles/ml_models_test.dir/ml_models_test.cc.o"
  "CMakeFiles/ml_models_test.dir/ml_models_test.cc.o.d"
  "ml_models_test"
  "ml_models_test.pdb"
  "ml_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
