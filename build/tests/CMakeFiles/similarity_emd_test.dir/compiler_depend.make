# Empty compiler generated dependencies file for similarity_emd_test.
# This may be replaced when dependencies are built.
