file(REMOVE_RECURSE
  "CMakeFiles/similarity_emd_test.dir/similarity_emd_test.cc.o"
  "CMakeFiles/similarity_emd_test.dir/similarity_emd_test.cc.o.d"
  "similarity_emd_test"
  "similarity_emd_test.pdb"
  "similarity_emd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similarity_emd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
