# Empty compiler generated dependencies file for metadata_serialization_test.
# This may be replaced when dependencies are built.
