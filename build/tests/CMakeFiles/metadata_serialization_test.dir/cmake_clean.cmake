file(REMOVE_RECURSE
  "CMakeFiles/metadata_serialization_test.dir/metadata_serialization_test.cc.o"
  "CMakeFiles/metadata_serialization_test.dir/metadata_serialization_test.cc.o.d"
  "metadata_serialization_test"
  "metadata_serialization_test.pdb"
  "metadata_serialization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadata_serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
