file(REMOVE_RECURSE
  "CMakeFiles/metadata_store_test.dir/metadata_store_test.cc.o"
  "CMakeFiles/metadata_store_test.dir/metadata_store_test.cc.o.d"
  "metadata_store_test"
  "metadata_store_test.pdb"
  "metadata_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadata_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
