file(REMOVE_RECURSE
  "CMakeFiles/mlprov_common.dir/flags.cc.o"
  "CMakeFiles/mlprov_common.dir/flags.cc.o.d"
  "CMakeFiles/mlprov_common.dir/histogram.cc.o"
  "CMakeFiles/mlprov_common.dir/histogram.cc.o.d"
  "CMakeFiles/mlprov_common.dir/rng.cc.o"
  "CMakeFiles/mlprov_common.dir/rng.cc.o.d"
  "CMakeFiles/mlprov_common.dir/stats.cc.o"
  "CMakeFiles/mlprov_common.dir/stats.cc.o.d"
  "CMakeFiles/mlprov_common.dir/status.cc.o"
  "CMakeFiles/mlprov_common.dir/status.cc.o.d"
  "CMakeFiles/mlprov_common.dir/table.cc.o"
  "CMakeFiles/mlprov_common.dir/table.cc.o.d"
  "libmlprov_common.a"
  "libmlprov_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlprov_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
