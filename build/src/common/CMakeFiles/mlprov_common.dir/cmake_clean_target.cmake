file(REMOVE_RECURSE
  "libmlprov_common.a"
)
