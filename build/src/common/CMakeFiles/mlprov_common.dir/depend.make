# Empty dependencies file for mlprov_common.
# This may be replaced when dependencies are built.
