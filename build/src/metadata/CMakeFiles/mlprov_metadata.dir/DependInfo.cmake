
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metadata/metadata_store.cc" "src/metadata/CMakeFiles/mlprov_metadata.dir/metadata_store.cc.o" "gcc" "src/metadata/CMakeFiles/mlprov_metadata.dir/metadata_store.cc.o.d"
  "/root/repo/src/metadata/serialization.cc" "src/metadata/CMakeFiles/mlprov_metadata.dir/serialization.cc.o" "gcc" "src/metadata/CMakeFiles/mlprov_metadata.dir/serialization.cc.o.d"
  "/root/repo/src/metadata/trace.cc" "src/metadata/CMakeFiles/mlprov_metadata.dir/trace.cc.o" "gcc" "src/metadata/CMakeFiles/mlprov_metadata.dir/trace.cc.o.d"
  "/root/repo/src/metadata/types.cc" "src/metadata/CMakeFiles/mlprov_metadata.dir/types.cc.o" "gcc" "src/metadata/CMakeFiles/mlprov_metadata.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlprov_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
