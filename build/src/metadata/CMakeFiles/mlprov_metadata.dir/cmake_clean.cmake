file(REMOVE_RECURSE
  "CMakeFiles/mlprov_metadata.dir/metadata_store.cc.o"
  "CMakeFiles/mlprov_metadata.dir/metadata_store.cc.o.d"
  "CMakeFiles/mlprov_metadata.dir/serialization.cc.o"
  "CMakeFiles/mlprov_metadata.dir/serialization.cc.o.d"
  "CMakeFiles/mlprov_metadata.dir/trace.cc.o"
  "CMakeFiles/mlprov_metadata.dir/trace.cc.o.d"
  "CMakeFiles/mlprov_metadata.dir/types.cc.o"
  "CMakeFiles/mlprov_metadata.dir/types.cc.o.d"
  "libmlprov_metadata.a"
  "libmlprov_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlprov_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
