file(REMOVE_RECURSE
  "libmlprov_metadata.a"
)
