# Empty compiler generated dependencies file for mlprov_metadata.
# This may be replaced when dependencies are built.
