file(REMOVE_RECURSE
  "libmlprov_ml.a"
)
