# Empty dependencies file for mlprov_ml.
# This may be replaced when dependencies are built.
