file(REMOVE_RECURSE
  "CMakeFiles/mlprov_ml.dir/dataset.cc.o"
  "CMakeFiles/mlprov_ml.dir/dataset.cc.o.d"
  "CMakeFiles/mlprov_ml.dir/decision_tree.cc.o"
  "CMakeFiles/mlprov_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/mlprov_ml.dir/gbdt.cc.o"
  "CMakeFiles/mlprov_ml.dir/gbdt.cc.o.d"
  "CMakeFiles/mlprov_ml.dir/logistic_regression.cc.o"
  "CMakeFiles/mlprov_ml.dir/logistic_regression.cc.o.d"
  "CMakeFiles/mlprov_ml.dir/metrics.cc.o"
  "CMakeFiles/mlprov_ml.dir/metrics.cc.o.d"
  "CMakeFiles/mlprov_ml.dir/random_forest.cc.o"
  "CMakeFiles/mlprov_ml.dir/random_forest.cc.o.d"
  "libmlprov_ml.a"
  "libmlprov_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlprov_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
