file(REMOVE_RECURSE
  "libmlprov_simulator.a"
)
