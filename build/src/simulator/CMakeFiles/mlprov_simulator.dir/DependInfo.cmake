
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simulator/corpus.cc" "src/simulator/CMakeFiles/mlprov_simulator.dir/corpus.cc.o" "gcc" "src/simulator/CMakeFiles/mlprov_simulator.dir/corpus.cc.o.d"
  "/root/repo/src/simulator/corpus_generator.cc" "src/simulator/CMakeFiles/mlprov_simulator.dir/corpus_generator.cc.o" "gcc" "src/simulator/CMakeFiles/mlprov_simulator.dir/corpus_generator.cc.o.d"
  "/root/repo/src/simulator/cost_model.cc" "src/simulator/CMakeFiles/mlprov_simulator.dir/cost_model.cc.o" "gcc" "src/simulator/CMakeFiles/mlprov_simulator.dir/cost_model.cc.o.d"
  "/root/repo/src/simulator/pipeline_config.cc" "src/simulator/CMakeFiles/mlprov_simulator.dir/pipeline_config.cc.o" "gcc" "src/simulator/CMakeFiles/mlprov_simulator.dir/pipeline_config.cc.o.d"
  "/root/repo/src/simulator/pipeline_simulator.cc" "src/simulator/CMakeFiles/mlprov_simulator.dir/pipeline_simulator.cc.o" "gcc" "src/simulator/CMakeFiles/mlprov_simulator.dir/pipeline_simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlprov_common.dir/DependInfo.cmake"
  "/root/repo/build/src/metadata/CMakeFiles/mlprov_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/dataspan/CMakeFiles/mlprov_dataspan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
