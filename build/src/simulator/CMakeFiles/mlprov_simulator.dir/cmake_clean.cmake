file(REMOVE_RECURSE
  "CMakeFiles/mlprov_simulator.dir/corpus.cc.o"
  "CMakeFiles/mlprov_simulator.dir/corpus.cc.o.d"
  "CMakeFiles/mlprov_simulator.dir/corpus_generator.cc.o"
  "CMakeFiles/mlprov_simulator.dir/corpus_generator.cc.o.d"
  "CMakeFiles/mlprov_simulator.dir/cost_model.cc.o"
  "CMakeFiles/mlprov_simulator.dir/cost_model.cc.o.d"
  "CMakeFiles/mlprov_simulator.dir/pipeline_config.cc.o"
  "CMakeFiles/mlprov_simulator.dir/pipeline_config.cc.o.d"
  "CMakeFiles/mlprov_simulator.dir/pipeline_simulator.cc.o"
  "CMakeFiles/mlprov_simulator.dir/pipeline_simulator.cc.o.d"
  "libmlprov_simulator.a"
  "libmlprov_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlprov_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
