# Empty compiler generated dependencies file for mlprov_simulator.
# This may be replaced when dependencies are built.
