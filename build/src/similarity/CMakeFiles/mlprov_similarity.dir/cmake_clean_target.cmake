file(REMOVE_RECURSE
  "libmlprov_similarity.a"
)
