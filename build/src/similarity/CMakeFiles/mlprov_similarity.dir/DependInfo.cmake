
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/similarity/emd.cc" "src/similarity/CMakeFiles/mlprov_similarity.dir/emd.cc.o" "gcc" "src/similarity/CMakeFiles/mlprov_similarity.dir/emd.cc.o.d"
  "/root/repo/src/similarity/feature_similarity.cc" "src/similarity/CMakeFiles/mlprov_similarity.dir/feature_similarity.cc.o" "gcc" "src/similarity/CMakeFiles/mlprov_similarity.dir/feature_similarity.cc.o.d"
  "/root/repo/src/similarity/s2jsd_lsh.cc" "src/similarity/CMakeFiles/mlprov_similarity.dir/s2jsd_lsh.cc.o" "gcc" "src/similarity/CMakeFiles/mlprov_similarity.dir/s2jsd_lsh.cc.o.d"
  "/root/repo/src/similarity/span_similarity.cc" "src/similarity/CMakeFiles/mlprov_similarity.dir/span_similarity.cc.o" "gcc" "src/similarity/CMakeFiles/mlprov_similarity.dir/span_similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlprov_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dataspan/CMakeFiles/mlprov_dataspan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
