file(REMOVE_RECURSE
  "CMakeFiles/mlprov_similarity.dir/emd.cc.o"
  "CMakeFiles/mlprov_similarity.dir/emd.cc.o.d"
  "CMakeFiles/mlprov_similarity.dir/feature_similarity.cc.o"
  "CMakeFiles/mlprov_similarity.dir/feature_similarity.cc.o.d"
  "CMakeFiles/mlprov_similarity.dir/s2jsd_lsh.cc.o"
  "CMakeFiles/mlprov_similarity.dir/s2jsd_lsh.cc.o.d"
  "CMakeFiles/mlprov_similarity.dir/span_similarity.cc.o"
  "CMakeFiles/mlprov_similarity.dir/span_similarity.cc.o.d"
  "libmlprov_similarity.a"
  "libmlprov_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlprov_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
