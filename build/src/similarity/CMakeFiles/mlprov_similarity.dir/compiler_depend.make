# Empty compiler generated dependencies file for mlprov_similarity.
# This may be replaced when dependencies are built.
