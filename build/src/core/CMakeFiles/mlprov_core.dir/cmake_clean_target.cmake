file(REMOVE_RECURSE
  "libmlprov_core.a"
)
