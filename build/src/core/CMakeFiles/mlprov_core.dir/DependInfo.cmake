
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/datalog.cc" "src/core/CMakeFiles/mlprov_core.dir/datalog.cc.o" "gcc" "src/core/CMakeFiles/mlprov_core.dir/datalog.cc.o.d"
  "/root/repo/src/core/features.cc" "src/core/CMakeFiles/mlprov_core.dir/features.cc.o" "gcc" "src/core/CMakeFiles/mlprov_core.dir/features.cc.o.d"
  "/root/repo/src/core/graphlet_analysis.cc" "src/core/CMakeFiles/mlprov_core.dir/graphlet_analysis.cc.o" "gcc" "src/core/CMakeFiles/mlprov_core.dir/graphlet_analysis.cc.o.d"
  "/root/repo/src/core/heuristics.cc" "src/core/CMakeFiles/mlprov_core.dir/heuristics.cc.o" "gcc" "src/core/CMakeFiles/mlprov_core.dir/heuristics.cc.o.d"
  "/root/repo/src/core/pipeline_analysis.cc" "src/core/CMakeFiles/mlprov_core.dir/pipeline_analysis.cc.o" "gcc" "src/core/CMakeFiles/mlprov_core.dir/pipeline_analysis.cc.o.d"
  "/root/repo/src/core/segmentation.cc" "src/core/CMakeFiles/mlprov_core.dir/segmentation.cc.o" "gcc" "src/core/CMakeFiles/mlprov_core.dir/segmentation.cc.o.d"
  "/root/repo/src/core/waste_mitigation.cc" "src/core/CMakeFiles/mlprov_core.dir/waste_mitigation.cc.o" "gcc" "src/core/CMakeFiles/mlprov_core.dir/waste_mitigation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlprov_common.dir/DependInfo.cmake"
  "/root/repo/build/src/metadata/CMakeFiles/mlprov_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/dataspan/CMakeFiles/mlprov_dataspan.dir/DependInfo.cmake"
  "/root/repo/build/src/similarity/CMakeFiles/mlprov_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/simulator/CMakeFiles/mlprov_simulator.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/mlprov_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
