file(REMOVE_RECURSE
  "CMakeFiles/mlprov_core.dir/datalog.cc.o"
  "CMakeFiles/mlprov_core.dir/datalog.cc.o.d"
  "CMakeFiles/mlprov_core.dir/features.cc.o"
  "CMakeFiles/mlprov_core.dir/features.cc.o.d"
  "CMakeFiles/mlprov_core.dir/graphlet_analysis.cc.o"
  "CMakeFiles/mlprov_core.dir/graphlet_analysis.cc.o.d"
  "CMakeFiles/mlprov_core.dir/heuristics.cc.o"
  "CMakeFiles/mlprov_core.dir/heuristics.cc.o.d"
  "CMakeFiles/mlprov_core.dir/pipeline_analysis.cc.o"
  "CMakeFiles/mlprov_core.dir/pipeline_analysis.cc.o.d"
  "CMakeFiles/mlprov_core.dir/segmentation.cc.o"
  "CMakeFiles/mlprov_core.dir/segmentation.cc.o.d"
  "CMakeFiles/mlprov_core.dir/waste_mitigation.cc.o"
  "CMakeFiles/mlprov_core.dir/waste_mitigation.cc.o.d"
  "libmlprov_core.a"
  "libmlprov_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlprov_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
