# Empty compiler generated dependencies file for mlprov_core.
# This may be replaced when dependencies are built.
