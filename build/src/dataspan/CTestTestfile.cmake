# CMake generated Testfile for 
# Source directory: /root/repo/src/dataspan
# Build directory: /root/repo/build/src/dataspan
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
