
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataspan/analyzers.cc" "src/dataspan/CMakeFiles/mlprov_dataspan.dir/analyzers.cc.o" "gcc" "src/dataspan/CMakeFiles/mlprov_dataspan.dir/analyzers.cc.o.d"
  "/root/repo/src/dataspan/feature_stats.cc" "src/dataspan/CMakeFiles/mlprov_dataspan.dir/feature_stats.cc.o" "gcc" "src/dataspan/CMakeFiles/mlprov_dataspan.dir/feature_stats.cc.o.d"
  "/root/repo/src/dataspan/span_stats.cc" "src/dataspan/CMakeFiles/mlprov_dataspan.dir/span_stats.cc.o" "gcc" "src/dataspan/CMakeFiles/mlprov_dataspan.dir/span_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlprov_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
