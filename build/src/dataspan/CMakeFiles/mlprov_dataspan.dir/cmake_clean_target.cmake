file(REMOVE_RECURSE
  "libmlprov_dataspan.a"
)
