# Empty dependencies file for mlprov_dataspan.
# This may be replaced when dependencies are built.
