file(REMOVE_RECURSE
  "CMakeFiles/mlprov_dataspan.dir/analyzers.cc.o"
  "CMakeFiles/mlprov_dataspan.dir/analyzers.cc.o.d"
  "CMakeFiles/mlprov_dataspan.dir/feature_stats.cc.o"
  "CMakeFiles/mlprov_dataspan.dir/feature_stats.cc.o.d"
  "CMakeFiles/mlprov_dataspan.dir/span_stats.cc.o"
  "CMakeFiles/mlprov_dataspan.dir/span_stats.cc.o.d"
  "libmlprov_dataspan.a"
  "libmlprov_dataspan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlprov_dataspan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
