file(REMOVE_RECURSE
  "CMakeFiles/waste_mitigation_e2e.dir/waste_mitigation_e2e.cpp.o"
  "CMakeFiles/waste_mitigation_e2e.dir/waste_mitigation_e2e.cpp.o.d"
  "waste_mitigation_e2e"
  "waste_mitigation_e2e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waste_mitigation_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
