# Empty compiler generated dependencies file for waste_mitigation_e2e.
# This may be replaced when dependencies are built.
