// Microbenchmarks for the similarity substrate: exact EMD vs the 1-D
// closed form, LSH hashing, span-pair similarity (EMD vs positional), and
// the Hungarian matcher.
#include <benchmark/benchmark.h>

#include "bench/micro_common.h"
#include "common/rng.h"
#include "dataspan/span_stats.h"
#include "similarity/emd.h"
#include "similarity/feature_similarity.h"
#include "similarity/span_similarity.h"

namespace mlprov {
namespace {

std::vector<double> RandomDistribution(common::Rng& rng, size_t n) {
  std::vector<double> d(n);
  for (double& x : d) x = rng.NextDouble();
  return d;
}

void BM_Emd1D(benchmark::State& state) {
  common::Rng rng(1);
  const auto p = RandomDistribution(rng, 10);
  const auto q = RandomDistribution(rng, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity::Emd1D(p, q));
  }
}
BENCHMARK(BM_Emd1D);

void BM_EmdExact(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  common::Rng rng(2);
  const std::vector<double> supply(n, 1.0);
  const std::vector<double> demand(n, 1.0);
  std::vector<double> cost(n * n);
  for (double& c : cost) c = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity::EarthMoversDistance(
        supply, demand,
        [&](size_t i, size_t j) { return cost[i * n + j]; }));
  }
}
BENCHMARK(BM_EmdExact)->Arg(8)->Arg(32)->Arg(64);

void BM_Hungarian(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  common::Rng rng(3);
  std::vector<double> weight(n * n);
  for (double& w : weight) w = rng.NextDouble();
  for (auto _ : state) {
    benchmark::DoNotOptimize(similarity::MaxBipartiteMatchWeight(
        n, n, [&](size_t i, size_t j) { return weight[i * n + j]; }));
  }
}
BENCHMARK(BM_Hungarian)->Arg(8)->Arg(32)->Arg(64);

void BM_LshHash(benchmark::State& state) {
  similarity::S2JsdLsh lsh(similarity::S2JsdLsh::Options{});
  common::Rng rng(4);
  const auto d = RandomDistribution(rng, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lsh.Hash(d));
  }
}
BENCHMARK(BM_LshHash);

dataspan::SpanStats MakeSpan(int features, uint64_t seed) {
  dataspan::SchemaConfig config;
  config.num_features = features;
  dataspan::SpanStatsGenerator gen(config, common::Rng(seed));
  return gen.NextSpan();
}

void BM_SpanPairEmd(benchmark::State& state) {
  const auto a = MakeSpan(static_cast<int>(state.range(0)), 5);
  const auto b = MakeSpan(static_cast<int>(state.range(0)), 6);
  similarity::SpanSimilarityCalculator calc(
      similarity::FeatureSimilarityOptions{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(calc.SpanPairSimilarity(a, b));
  }
}
BENCHMARK(BM_SpanPairEmd)->Arg(16)->Arg(48);

void BM_SpanPairPositionalCached(benchmark::State& state) {
  const auto a = MakeSpan(static_cast<int>(state.range(0)), 5);
  const auto b = MakeSpan(static_cast<int>(state.range(0)), 6);
  similarity::FeatureSimilarityOptions options;
  options.soft_hash = true;
  options.lsh.num_hashes = 16;
  similarity::SpanSimilarityCalculator calc(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(calc.PositionalSimilarityCached(1, a, 2, b));
    state.PauseTiming();
    calc.ClearCache();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_SpanPairPositionalCached)->Arg(16)->Arg(48);

}  // namespace
}  // namespace mlprov

MLPROV_MICROBENCH_MAIN();
