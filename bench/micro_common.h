#ifndef MLPROV_BENCH_MICRO_COMMON_H_
#define MLPROV_BENCH_MICRO_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/parallel.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace mlprov::bench {

/// ConsoleReporter that also keeps every run so the micro-bench main can
/// write a machine-readable BENCH_<name>.json next to the console table.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    collected_.insert(collected_.end(), runs.begin(), runs.end());
    benchmark::ConsoleReporter::ReportRuns(runs);
  }
  const std::vector<Run>& collected() const { return collected_; }

 private:
  std::vector<Run> collected_;
};

/// Shared main body for the google-benchmark binaries: runs the
/// registered benchmarks, then records per-benchmark real/CPU time per
/// iteration (in the run's time unit, ns by default) under "results".
/// Accepts --report_dir=, --no_report, and --threads= alongside the usual
/// --benchmark_* flags. `extra`, when given, runs after the registered
/// benchmarks and may record additional results (e.g. scaling sweeps)
/// before the report is written.
inline int MicrobenchMain(
    int argc, char** argv,
    const std::function<void(const common::Flags&, obs::BenchReport&)>&
        extra = nullptr) {
  const common::Flags flags(argc, argv);
  const std::string report_dir = flags.GetString("report_dir", ".");
  const bool write_report = !flags.GetBool("no_report", false);
  const common::StatusOr<int> threads = common::ThreadsFromFlags(flags);
  if (!threads.ok()) {
    std::fprintf(stderr, "error: %s\n", threads.status().ToString().c_str());
    return 2;
  }
  common::SetGlobalThreads(*threads);
  obs::BenchReport report(
      obs::BenchReport::NameFromArgv0(argc > 0 ? argv[0] : ""));
  report.SetCommandLine(argc, argv);
  report.SetParallelism(*threads);
  const obs::Stopwatch wall;

  benchmark::Initialize(&argc, argv);
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  for (const auto& run : reporter.collected()) {
    if (run.error_occurred ||
        run.run_type != benchmark::BenchmarkReporter::Run::RT_Iteration) {
      continue;
    }
    const std::string name = run.benchmark_name();
    report.Set(name + ".real_time", run.GetAdjustedRealTime());
    report.Set(name + ".cpu_time", run.GetAdjustedCPUTime());
    report.Set(name + ".time_unit",
               benchmark::GetTimeUnitString(run.time_unit));
    report.Set(name + ".iterations",
               static_cast<int64_t>(run.iterations));
  }
  if (extra) extra(flags, report);
  report.set_wall_seconds(wall.Seconds());
  if (write_report) {
    const auto status = report.WriteTo(report_dir);
    if (status.ok()) {
      std::printf("wrote %s/%s\n", report_dir.c_str(),
                  report.FileName().c_str());
    } else {
      std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
    }
  }
  return 0;
}

}  // namespace mlprov::bench

/// Drop-in replacement for BENCHMARK_MAIN() that also writes the
/// BENCH_<name>.json report.
#define MLPROV_MICROBENCH_MAIN()                                      \
  int main(int argc, char** argv) {                                   \
    return ::mlprov::bench::MicrobenchMain(argc, argv);               \
  }                                                                   \
  int main(int, char**)

#endif  // MLPROV_BENCH_MICRO_COMMON_H_
