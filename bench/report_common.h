#ifndef MLPROV_BENCH_REPORT_COMMON_H_
#define MLPROV_BENCH_REPORT_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/failpoints.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "common/histogram.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/graphlet_analysis.h"
#include "obs/flight_recorder.h"
#include "obs/report.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "simulator/corpus_generator.h"

namespace mlprov::bench {

/// Shared setup for the per-figure report harnesses: parses the standard
/// flags (--pipelines=, --seed=, --horizon_days=), generates the corpus,
/// and reports wall-clock timings. Every report binary prints "paper"
/// reference values next to the values measured on the simulated corpus;
/// absolute agreement is not expected (the substrate is a simulator), the
/// reproduced quantity is the *shape* (see EXPERIMENTS.md).
///
/// Observability flags handled here for every report binary:
///   --trace_out=FILE   enable obs tracing and write a Chrome trace-event
///                      JSON file (open in chrome://tracing or Perfetto)
///   --report_dir=DIR   where BENCH_<name>.json lands (default ".")
///   --no_report        skip writing the machine-readable report
///   --threads=N        parallelism for corpus generation and analysis
///                      (default: hardware concurrency; 1 = sequential)
///   --measure_speedup  also generate the corpus once at --threads=1 and
///                      record wall-clock speedup in the report
///
/// Failure-semantics flags (see DESIGN.md "Failure semantics"):
///   --fault_plan=SPEC  arm deterministic fault injection, e.g.
///                      "exec.trainer:transient:0.05,exec.pusher:persistent:0.01"
///   --max_retries=N    orchestrator retry budget per operator invocation
///
/// Execution-memoization flags (see DESIGN.md "Execution memoization"):
///   --cache_policy=P   off (default) | lru | unbounded
///   --cache_capacity=N per-pipeline LRU entry bound (only under lru)
///
/// Dies with exit code 2 on a present-but-malformed integer flag; the
/// bench binaries prefer a loud early exit over a silently ignored typo.
inline int64_t IntFlagOrDie(const common::Flags& flags,
                            const std::string& name, int64_t def) {
  const common::StatusOr<int64_t> value = flags.GetIntStrict(name, def);
  if (!value.ok()) {
    std::fprintf(stderr, "error: %s\n", value.status().ToString().c_str());
    std::exit(2);
  }
  return *value;
}

/// Every flag the bench mains understand, parsed and validated in one
/// place (integers via Flags::GetIntStrict, enums via their parsers).
/// ReportContext consumes this; binaries read their extras (e.g. --trees)
/// from here instead of re-parsing ctx.flags ad hoc.
struct Options {
  sim::CorpusConfig config;
  /// Resolved global thread count (--threads=, default: hardware).
  int threads = 1;
  bool measure_speedup = false;
  std::string trace_out;
  std::string report_dir = ".";
  bool write_report = true;
  /// Forest size for the classifier/tradeoff benches (--trees=).
  int trees = 50;
  /// Streaming-ingestion flags (bench_stream_ingest):
  ///   --stream_seal_grace_hours=H  watermark grace before sealing
  ///   --stream_policy=V            input | input_pre | input_pre_trainer
  ///   --stream_naive_pipelines=N   cap for the naive re-segmentation
  ///                                baseline (it is quadratic)
  double stream_seal_grace_hours = 48.0;
  std::string stream_policy = "input";
  int stream_naive_pipelines = 12;
  /// Observability-plane flags (every report binary):
  ///   --metrics_timeline=FILE  arm the PeriodicSampler and write the
  ///                            JSON metrics time-series there
  ///   --metrics_interval=N     records between timeline samples
  ///   --flight_recorder=DIR    where flight_<session>.json post-mortems
  ///                            land (also installs the crash handler)
  std::string metrics_timeline;
  int64_t metrics_interval = 4096;
  std::string flight_recorder;
  /// Durability flags (bench_stream_ingest, bench_recovery — see
  /// DESIGN.md "Durability & recovery"):
  ///   --wal_dir=DIR             arm the durable-ingest phase; each
  ///                             pipeline journals into DIR/p<id>/
  ///   --wal_sync=P              none | interval | every
  ///   --checkpoint_interval=N   records between checkpoints (0 = never)
  ///   --max_session_restarts=N  supervisor restart budget
  ///   --crash_after_records=N   SIGKILL the process after N durable
  ///                             ingests (crash-recovery smoke; 0 = off)
  std::string wal_dir;
  std::string wal_sync = "interval";
  int64_t checkpoint_interval = 256;
  int max_session_restarts = 3;
  int64_t crash_after_records = 0;
  /// Sharded-service flags (bench_stream_ingest — see DESIGN.md
  /// "Sharded provenance service"):
  ///   --shards=N                arm the sharded phase and sweep shard
  ///                             counts up to N (0 = off)
  ///   --shard_queue_capacity=N  per-shard SPSC queue bound, in records
  ///   --backpressure=P          block (lossless) | shed
  int shards = 0;
  int64_t shard_queue_capacity = 1024;
  std::string backpressure = "block";

  static Options Parse(const common::Flags& flags,
                       int default_pipelines = 600) {
    Options options;
    options.config.num_pipelines = static_cast<int>(
        IntFlagOrDie(flags, "pipelines", default_pipelines));
    options.config.seed =
        static_cast<uint64_t>(IntFlagOrDie(flags, "seed", 42));
    options.config.horizon_days = flags.GetDouble("horizon_days", 130.0);
    if (const std::string plan_text = flags.GetString("fault_plan", "");
        !plan_text.empty()) {
      common::StatusOr<common::FaultPlan> plan =
          common::FaultPlan::Parse(plan_text);
      if (!plan.ok()) {
        std::fprintf(stderr, "error: --fault_plan: %s\n",
                     plan.status().ToString().c_str());
        std::exit(2);
      }
      options.config.fault_plan = std::move(*plan);
    }
    options.config.max_retries = static_cast<int>(IntFlagOrDie(
        flags, "max_retries", options.config.max_retries));
    {
      const common::StatusOr<sim::CachePolicy> policy =
          sim::ParseCachePolicy(flags.GetString("cache_policy", "off"));
      if (!policy.ok()) {
        std::fprintf(stderr, "error: --cache_policy: %s\n",
                     policy.status().ToString().c_str());
        std::exit(2);
      }
      options.config.cache_policy = *policy;
    }
    options.config.cache_capacity = static_cast<int>(IntFlagOrDie(
        flags, "cache_capacity", options.config.cache_capacity));
    options.trace_out = flags.GetString("trace_out", "");
    options.report_dir = flags.GetString("report_dir", ".");
    options.write_report = !flags.GetBool("no_report", false);
    const common::StatusOr<int> threads = common::ThreadsFromFlags(flags);
    if (!threads.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   threads.status().ToString().c_str());
      std::exit(2);
    }
    options.threads = *threads;
    options.measure_speedup = flags.GetBool("measure_speedup", false);
    options.trees = static_cast<int>(IntFlagOrDie(flags, "trees", 50));
    options.stream_seal_grace_hours =
        flags.GetDouble("stream_seal_grace_hours", 48.0);
    options.stream_policy = flags.GetString("stream_policy", "input");
    options.stream_naive_pipelines = static_cast<int>(
        IntFlagOrDie(flags, "stream_naive_pipelines", 12));
    options.metrics_timeline = flags.GetString("metrics_timeline", "");
    options.metrics_interval =
        IntFlagOrDie(flags, "metrics_interval", 4096);
    options.flight_recorder = flags.GetString("flight_recorder", "");
    options.wal_dir = flags.GetString("wal_dir", "");
    options.wal_sync = flags.GetString("wal_sync", "interval");
    options.checkpoint_interval =
        IntFlagOrDie(flags, "checkpoint_interval", 256);
    options.max_session_restarts = static_cast<int>(
        IntFlagOrDie(flags, "max_session_restarts", 3));
    options.crash_after_records =
        IntFlagOrDie(flags, "crash_after_records", 0);
    options.shards = static_cast<int>(IntFlagOrDie(flags, "shards", 0));
    options.shard_queue_capacity =
        IntFlagOrDie(flags, "shard_queue_capacity", 1024);
    options.backpressure = flags.GetString("backpressure", "block");
    return options;
  }
};

/// The destructor writes `BENCH_<name>.json` containing the corpus shape,
/// wall times, whatever key values the binary recorded via
/// `ctx.report.Set(...)`, and a snapshot of the obs metrics registry.
struct ReportContext {
  common::Flags flags;
  Options options;
  /// Alias of options.config (legacy name most binaries use).
  sim::CorpusConfig config;
  sim::Corpus corpus;
  double generation_seconds = 0.0;
  obs::BenchReport report;

  ReportContext(int argc, char** argv, const char* title,
                int default_pipelines = 600)
      : flags(argc, argv),
        options(Options::Parse(flags, default_pipelines)),
        config(options.config),
        report(obs::BenchReport::NameFromArgv0(argc > 0 ? argv[0] : "")) {
    report.SetCommandLine(argc, argv);
    trace_out_ = options.trace_out;
    report_dir_ = options.report_dir;
    write_report_ = options.write_report;
    common::SetGlobalThreads(options.threads);
    const int threads = options.threads;
    const bool measure_speedup = options.measure_speedup;
    if (!trace_out_.empty()) {
      obs::TraceRecorder::Global().Enable();
    }
    metrics_timeline_ = options.metrics_timeline;
    if (!metrics_timeline_.empty()) {
      obs::PeriodicSampler::Options sampler;
      sampler.interval_records = static_cast<uint64_t>(
          options.metrics_interval > 0 ? options.metrics_interval : 1);
      sampler.flush_path = metrics_timeline_;
      obs::PeriodicSampler::Global().Enable(sampler);
    }
    if (!options.flight_recorder.empty()) {
      obs::SetFlightRecorderDir(options.flight_recorder);
      obs::FlightRecorder::InstallCrashHandler();
    }
    std::printf("=== %s ===\n", title);
    std::printf(
        "corpus: %d pipelines, seed %llu, horizon %.0f days, "
        "%d thread(s)\n",
        config.num_pipelines,
        static_cast<unsigned long long>(config.seed), config.horizon_days,
        threads);
    if (!config.fault_plan.empty()) {
      std::printf("fault plan: %s (max %d retries)\n",
                  config.fault_plan.ToString().c_str(),
                  config.max_retries);
    }
    if (config.cache_policy != sim::CachePolicy::kOff) {
      std::printf("execution cache: %s (capacity %d)\n",
                  sim::ToString(config.cache_policy),
                  config.cache_capacity);
    }
    double sequential_seconds = 0.0;
    if (measure_speedup && threads > 1) {
      // The derived per-pipeline RNG streams make the corpus identical at
      // any thread count, so a throwaway single-thread run is a valid
      // baseline for the same corpus.
      common::SetGlobalThreads(1);
      const obs::Stopwatch seq;
      const sim::Corpus baseline = sim::GenerateCorpus(config);
      sequential_seconds = seq.Seconds();
      (void)baseline;
      common::SetGlobalThreads(threads);
    }
    const auto start = std::chrono::steady_clock::now();
    corpus = sim::GenerateCorpus(config);
    generation_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    std::printf(
        "generated %zu executions, %zu artifacts, %zu trainer runs "
        "in %.1fs\n\n",
        corpus.TotalExecutions(), corpus.TotalArtifacts(),
        corpus.TotalTrainerRuns(), generation_seconds);
    report.SetCorpus(config.num_pipelines, config.seed, config.horizon_days,
                     corpus.TotalExecutions(), corpus.TotalArtifacts(),
                     corpus.TotalTrainerRuns(), generation_seconds);
    double speedup = 0.0;
    if (sequential_seconds > 0.0 && generation_seconds > 0.0) {
      speedup = sequential_seconds / generation_seconds;
      std::printf("corpus generation speedup at %d threads: %.2fx\n\n",
                  threads, speedup);
      report.Set("corpus_gen.sequential_seconds", sequential_seconds);
    }
    report.SetParallelism(threads, speedup);
  }

  ~ReportContext() {
    for (const std::string& name : flags.Unknown()) {
      std::fprintf(stderr, "warning: unrecognized flag --%s (ignored)\n",
                   name.c_str());
    }
    report.set_wall_seconds(wall_.Seconds());
    // Failure-semantics tallies for the whole run (all zero when no
    // fault plan was armed and every trace was clean).
    auto& registry = obs::Registry::Global();
    report.SetFailureStats(
        registry.GetCounter("exec.retries")->Value(),
        registry.GetCounter("trace.quarantined")->Value(),
        registry.GetGauge("waste.failed_hours")->Value());
    // Memoization tallies (zero under --cache_policy=off); flushed into
    // the registry once per simulated pipeline.
    report.SetCacheStats(sim::ToString(config.cache_policy),
                         registry.GetCounter("cache.hits")->Value(),
                         registry.GetCounter("cache.misses")->Value(),
                         registry.GetCounter("cache.evictions")->Value(),
                         registry.GetGauge("cache.saved_hours")->Value());
    auto& sampler = obs::PeriodicSampler::Global();
    if (sampler.enabled()) {
      // One final sample so the timeline always covers the whole run
      // (and is non-empty even when fewer than --metrics_interval
      // records streamed — or none, in MLPROV_OBS_NOOP builds).
      sampler.SampleNow("final");
      report.SetTimeline(sampler.ToJson());
      if (!metrics_timeline_.empty()) {
        const auto status = sampler.WriteTo(metrics_timeline_);
        if (status.ok()) {
          std::printf("wrote %s (%zu timeline samples)\n",
                      metrics_timeline_.c_str(), sampler.NumSamples());
        } else {
          std::fprintf(stderr, "warning: %s\n",
                       status.ToString().c_str());
        }
      }
    }
    if (write_report_) {
      const auto status = report.WriteTo(report_dir_);
      if (status.ok()) {
        std::printf("wrote %s/%s\n", report_dir_.c_str(),
                    report.FileName().c_str());
      } else {
        std::fprintf(stderr, "warning: %s\n",
                     status.ToString().c_str());
      }
    }
    if (!trace_out_.empty()) {
      const auto status =
          obs::TraceRecorder::Global().WriteTo(trace_out_);
      if (status.ok()) {
        std::printf("wrote %s (%zu trace events)\n", trace_out_.c_str(),
                    obs::TraceRecorder::Global().NumEvents());
      } else {
        std::fprintf(stderr, "warning: %s\n",
                     status.ToString().c_str());
      }
    }
  }

  ReportContext(const ReportContext&) = delete;
  ReportContext& operator=(const ReportContext&) = delete;

 private:
  obs::Stopwatch wall_;
  std::string trace_out_;
  std::string metrics_timeline_;
  std::string report_dir_;
  bool write_report_ = true;
};

/// Renders a distribution row: mean / median / p90 / p99 / max.
inline std::vector<std::string> DistRow(const std::string& name,
                                        const std::vector<double>& values) {
  using common::Quantile;
  using T = common::TextTable;
  return {name,
          T::Num(common::Mean(values), 2),
          T::Num(common::Quantile(values, 0.5), 2),
          T::Num(Quantile(values, 0.9), 2),
          T::Num(Quantile(values, 0.99), 2),
          T::Num(Quantile(values, 1.0), 2)};
}

}  // namespace mlprov::bench

#endif  // MLPROV_BENCH_REPORT_COMMON_H_
