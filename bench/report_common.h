#ifndef MLPROV_BENCH_REPORT_COMMON_H_
#define MLPROV_BENCH_REPORT_COMMON_H_

#include <chrono>
#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/histogram.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/graphlet_analysis.h"
#include "simulator/corpus_generator.h"

namespace mlprov::bench {

/// Shared setup for the per-figure report harnesses: parses the standard
/// flags (--pipelines=, --seed=, --horizon_days=), generates the corpus,
/// and reports wall-clock timings. Every report binary prints "paper"
/// reference values next to the values measured on the simulated corpus;
/// absolute agreement is not expected (the substrate is a simulator), the
/// reproduced quantity is the *shape* (see EXPERIMENTS.md).
struct ReportContext {
  common::Flags flags;
  sim::CorpusConfig config;
  sim::Corpus corpus;
  double generation_seconds = 0.0;

  ReportContext(int argc, char** argv, const char* title,
                int default_pipelines = 600)
      : flags(argc, argv) {
    config.num_pipelines =
        static_cast<int>(flags.GetInt("pipelines", default_pipelines));
    config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    config.horizon_days = flags.GetDouble("horizon_days", 130.0);
    std::printf("=== %s ===\n", title);
    std::printf("corpus: %d pipelines, seed %llu, horizon %.0f days\n",
                config.num_pipelines,
                static_cast<unsigned long long>(config.seed),
                config.horizon_days);
    const auto start = std::chrono::steady_clock::now();
    corpus = sim::GenerateCorpus(config);
    generation_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    std::printf(
        "generated %zu executions, %zu artifacts, %zu trainer runs "
        "in %.1fs\n\n",
        corpus.TotalExecutions(), corpus.TotalArtifacts(),
        corpus.TotalTrainerRuns(), generation_seconds);
  }
};

/// Renders a distribution row: mean / median / p90 / p99 / max.
inline std::vector<std::string> DistRow(const std::string& name,
                                        const std::vector<double>& values) {
  using common::Quantile;
  using T = common::TextTable;
  return {name,
          T::Num(common::Mean(values), 2),
          T::Num(common::Quantile(values, 0.5), 2),
          T::Num(Quantile(values, 0.9), 2),
          T::Num(Quantile(values, 0.99), 2),
          T::Num(Quantile(values, 1.0), 2)};
}

}  // namespace mlprov::bench

#endif  // MLPROV_BENCH_REPORT_COMMON_H_
