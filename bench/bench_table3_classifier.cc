// Reproduces Table 3 (both halves) and the Section 5.1 heuristics: the
// waste-mitigation classifier variants with their balanced accuracies and
// feature costs, plus the feature-group ablation study.
#include <cstdio>

#include "bench/report_common.h"
#include "core/features.h"
#include "core/heuristics.h"
#include "core/waste_mitigation.h"

namespace mlprov {
namespace {

int Run(int argc, char** argv) {
  bench::ReportContext ctx(argc, argv,
                           "Table 3: waste-mitigation classifiers");
  const core::SegmentedCorpus segmented = core::SegmentCorpus(ctx.corpus);
  core::WasteDatasetOptions dataset_options;
  const core::WasteDataset dataset =
      *core::BuildWasteDataset(ctx.corpus, segmented, dataset_options);
  std::printf("Section 5 dataset: %zu graphlets from %zu non-warm-start "
              "pipelines, %.0f%%/%.0f%% unpushed/pushed\n"
              "(paper: 420k graphlets, 2827 pipelines, 80%%/20%%)\n\n",
              dataset.data.NumRows(), dataset.num_pipelines,
              100.0 * (1.0 - dataset.data.PositiveFraction()),
              100.0 * dataset.data.PositiveFraction());

  core::MitigationOptions options;
  options.forest.num_trees =
      ctx.options.trees;
  core::WasteMitigation mitigation(&dataset, options);

  using T = common::TextTable;
  T heuristics({"heuristic (Section 5.1)", "paper", "measured BA"});
  const char* paper_heuristic[] = {"0.6 (best)", "low", "low"};
  for (int h = 0; h < 3; ++h) {
    const auto kind = static_cast<core::HeuristicKind>(h);
    const core::HeuristicResult result = core::EvaluateHeuristic(
        dataset, kind, mitigation.train_rows(), mitigation.test_rows());
    heuristics.AddRow({ToString(kind), paper_heuristic[h],
                       T::Num(result.balanced_accuracy, 3)});
    ctx.report.Set(std::string("heuristic_ba.") + ToString(kind),
                   result.balanced_accuracy);
  }
  std::printf("%s\n", heuristics.Render().c_str());

  const char* paper_ba[] = {"0.737", "0.801", "0.818", "0.948",
                            "0.737", "0.738", "0.680", "0.592"};
  const char* paper_cost[] = {"0.31", "0.53", "0.77", "1.00",
                              "0.31", "0.77", "0.77", "0.77"};
  T table({"model", "paper BA", "measured BA", "paper cost",
           "measured cost"});
  for (int v = 0; v < core::kNumVariants; ++v) {
    const auto variant = static_cast<core::Variant>(v);
    if (v == 4) {
      table.AddRow({"--- ablation (Section 5.3.3) ---", "", "", "", ""});
    }
    const core::VariantResult result = mitigation.Evaluate(variant);
    table.AddRow({ToString(variant), paper_ba[v],
                  T::Num(result.balanced_accuracy, 3), paper_cost[v],
                  T::Num(result.feature_cost, 2)});
    ctx.report.Set(std::string("ba.") + ToString(variant),
                   result.balanced_accuracy);
    ctx.report.Set(std::string("feature_cost.") + ToString(variant),
                   result.feature_cost);
  }
  ctx.report.Set("dataset_graphlets",
                 static_cast<int64_t>(dataset.data.NumRows()));
  ctx.report.Set("dataset_pushed_fraction",
                 dataset.data.PositiveFraction());
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "reproduced shape: accuracy rises monotonically as shape groups are\n"
      "revealed; RF:Validation is near-oracular; code-change features add\n"
      "nothing over input features; model-type alone is the weakest and\n"
      "matches the best handcrafted heuristic.\n");
  return 0;
}

}  // namespace
}  // namespace mlprov

int main(int argc, char** argv) { return mlprov::Run(argc, argv); }
