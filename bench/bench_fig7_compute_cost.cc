// Reproduces Figure 7: total compute cost share per operator group, plus
// the Section 3.3 observation that failures are expensive.
#include <cstdio>

#include "bench/report_common.h"
#include "core/pipeline_analysis.h"

namespace mlprov {
namespace {

int Run(int argc, char** argv) {
  bench::ReportContext ctx(argc, argv, "Figure 7: compute cost shares");
  const core::ResourceCostStats stats =
      core::ComputeResourceCost(ctx.corpus);

  // Paper anchors: training < 1/3 (about 20%); data ingestion ~22%;
  // data + model analysis/validation ~35% combined; deployment small.
  const char* paper[] = {"~22%", "see combined", "-", "~20% (<1/3)",
                         "see combined", "small", "-"};
  using T = common::TextTable;
  T table({"operator group", "paper", "measured share"});
  for (int g = 0; g < metadata::kNumOperatorGroups; ++g) {
    const auto group = static_cast<metadata::OperatorGroup>(g);
    table.AddRow({metadata::ToString(group), paper[g],
                  T::Pct(stats.Share(group))});
  }
  std::printf("%s\n", table.Render().c_str());
  for (int g = 0; g < metadata::kNumOperatorGroups; ++g) {
    const auto group = static_cast<metadata::OperatorGroup>(g);
    ctx.report.Set(std::string("share.") + metadata::ToString(group),
                   stats.Share(group));
  }
  const double combined =
      stats.Share(metadata::OperatorGroup::kDataAnalysisValidation) +
      stats.Share(metadata::OperatorGroup::kModelAnalysisValidation);
  std::printf("data+model analysis/validation combined: paper ~35%%, "
              "measured %s\n",
              T::Pct(combined).c_str());
  std::printf("cost sunk into failed executions (Section 3.3): %s of "
              "total\n",
              T::Pct(stats.total > 0 ? stats.failed_cost / stats.total
                                     : 0.0)
                  .c_str());
  ctx.report.Set("analysis_validation_combined_share", combined);
  ctx.report.Set("failed_cost_share",
                 stats.total > 0 ? stats.failed_cost / stats.total : 0.0);
  return 0;
}

}  // namespace
}  // namespace mlprov

int main(int argc, char** argv) { return mlprov::Run(argc, argv); }
