// Reproduces Figure 3(c,f) and the Section 3.2 feature-composition
// statistics: feature counts, categorical fraction, and categorical
// domain sizes.
#include <cstdio>

#include "bench/report_common.h"
#include "core/pipeline_analysis.h"

namespace mlprov {
namespace {

int Run(int argc, char** argv) {
  bench::ReportContext ctx(argc, argv,
                           "Figure 3(c,f) / Section 3.2: data complexity");
  const core::DataComplexityStats stats =
      core::ComputeDataComplexity(ctx.corpus);

  using T = common::TextTable;
  T summary({"metric", "paper", "measured"});
  double le100 = 0;
  for (double f : stats.feature_counts) le100 += f <= 100.0 ? 1.0 : 0.0;
  summary.AddRow(
      {"pipelines with <=100 features", "vast majority",
       T::Pct(le100 / static_cast<double>(stats.feature_counts.size()))});
  summary.AddRow({"max feature count", "tens of thousands",
                  T::Num(common::Quantile(stats.feature_counts, 1.0), 0)});
  summary.AddRow({"mean categorical fraction", "53%",
                  T::Pct(stats.mean_categorical_fraction)});
  summary.AddRow({"mean categorical domain", "10.6M",
                  T::Num(stats.mean_domain_all / 1e6, 1) + "M"});
  summary.AddRow({"mean domain (DNN pipelines)", "13.6M",
                  T::Num(stats.mean_domain_dnn / 1e6, 1) + "M"});
  summary.AddRow({"mean domain (Linear pipelines)", ">20M",
                  T::Num(stats.mean_domain_linear / 1e6, 1) + "M"});
  std::printf("%s\n", summary.Render().c_str());

  common::Histogram features = common::Histogram::Log10(3, 30000, 10);
  features.AddN(stats.feature_counts);
  std::printf(
      "%s\n",
      features.Render("Fig 3(c): features per pipeline (log bins)").c_str());

  common::Histogram cat = common::Histogram::Linear(0, 1, 10);
  cat.AddN(stats.categorical_fractions);
  std::printf("%s\n",
              cat.Render("Fig 3(f): categorical feature fraction").c_str());
  ctx.report.Set(
      "frac_le_100_features",
      le100 / static_cast<double>(stats.feature_counts.size()));
  ctx.report.Set("max_feature_count",
                 common::Quantile(stats.feature_counts, 1.0));
  ctx.report.Set("mean_categorical_fraction",
                 stats.mean_categorical_fraction);
  ctx.report.Set("mean_domain_all", stats.mean_domain_all);
  ctx.report.Set("mean_domain_dnn", stats.mean_domain_dnn);
  ctx.report.Set("mean_domain_linear", stats.mean_domain_linear);
  return 0;
}

}  // namespace
}  // namespace mlprov

int main(int argc, char** argv) { return mlprov::Run(argc, argv); }
