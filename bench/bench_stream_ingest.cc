// Streaming provenance ingestion benchmark: event throughput and
// per-event latency of the ProvenanceSession, the speedup of incremental
// segmentation over the naive recompute-per-trainer strawman, and a full
// online-scoring replay with waste accounting. The batch/streaming
// byte-identity contract is asserted on every pipeline (a perf number
// for a wrong answer is worthless).
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench/report_common.h"
#include "core/features.h"
#include "core/segmentation.h"
#include "core/waste_mitigation.h"
#include "metadata/binary_serialization.h"
#include "metadata/serialization.h"
#include "simulator/provenance_sink.h"
#include "stream/fingerprint.h"
#include "stream/online_scorer.h"
#include "stream/replay.h"
#include "stream/session.h"
#include "stream/shard_router.h"
#include "stream/supervisor.h"

namespace mlprov {
namespace {

/// Sink that buffers the feed so ingestion can be timed per record
/// without the feeder's trace walk inside the measured section. Span
/// stats are borrowed from the trace, which outlives the benchmark loop.
struct RecordingSink : public sim::ProvenanceSink {
  std::vector<sim::ProvenanceRecord> records;
  void OnRecord(const sim::ProvenanceRecord& record) override {
    records.push_back(record);
  }
};

/// Order-sensitive fold of the per-pipeline graphlet fingerprints — the
/// corpus-level identity the sharded merge must reproduce bit for bit.
uint64_t FingerprintSegmented(const core::SegmentedCorpus& segmented) {
  uint64_t hash = 14695981039346656037ull;
  for (const core::SegmentedPipeline& sp : segmented.pipelines) {
    hash ^= stream::FingerprintGraphlets(sp.graphlets);
    hash *= 1099511628211ull;
    hash ^= static_cast<uint64_t>(sp.quarantined_graphlets);
    hash *= 1099511628211ull;
  }
  return hash;
}

common::StatusOr<core::Variant> ParsePolicy(const std::string& name) {
  if (name == "input") return core::Variant::kInput;
  if (name == "input_pre") return core::Variant::kInputPre;
  if (name == "input_pre_trainer") return core::Variant::kInputPreTrainer;
  return common::Status::InvalidArgument(
      "--stream_policy must be input | input_pre | input_pre_trainer, "
      "got \"" +
      name + "\"");
}

int Run(int argc, char** argv) {
  bench::ReportContext ctx(argc, argv, "Streaming provenance ingestion",
                           /*default_pipelines=*/120);
  const auto policy = ParsePolicy(ctx.options.stream_policy);
  if (!policy.ok()) {
    std::fprintf(stderr, "error: %s\n", policy.status().ToString().c_str());
    return 2;
  }

  // ---- Phase 1: ingest throughput, per-event latency, identity. ----
  using Clock = std::chrono::steady_clock;
  std::vector<double> latencies_us;
  size_t total_records = 0;
  double ingest_seconds = 0.0;
  double finish_seconds = 0.0;
  bool identical = true;
  for (const sim::PipelineTrace& trace : ctx.corpus.pipelines) {
    RecordingSink feed;
    sim::ProvenanceFeeder feeder(&feed);
    feeder.Finish(trace);

    stream::SessionOptions options;
    options.segmenter.seal_grace_hours =
        ctx.options.stream_seal_grace_hours;
    stream::ProvenanceSession session(options);
    for (const sim::ProvenanceRecord& record : feed.records) {
      const auto t0 = Clock::now();
      const common::Status status = session.Ingest(record);
      const auto t1 = Clock::now();
      if (!status.ok()) {
        std::fprintf(stderr, "error: ingest: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      latencies_us.push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
    total_records += feed.records.size();
    ingest_seconds +=
        std::accumulate(latencies_us.end() -
                            static_cast<ptrdiff_t>(feed.records.size()),
                        latencies_us.end(), 0.0) /
        1e6;

    const auto f0 = Clock::now();
    auto result = session.Finish();
    finish_seconds +=
        std::chrono::duration<double>(Clock::now() - f0).count();
    if (!result.ok()) {
      std::fprintf(stderr, "error: finish: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    identical = identical &&
                stream::FingerprintGraphlets(result->graphlets) ==
                    stream::FingerprintGraphlets(
                        core::SegmentTrace(trace.store));
  }
  const double stream_seconds = ingest_seconds + finish_seconds;
  const double events_per_sec =
      stream_seconds > 0.0 ? total_records / stream_seconds : 0.0;
  using common::Quantile;
  std::printf("ingest: %zu records in %.3fs (%.0f records/s)\n",
              total_records, stream_seconds, events_per_sec);
  std::printf(
      "per-record latency: p50 %.2fus  p90 %.2fus  p99 %.2fus  "
      "max %.2fus\n",
      Quantile(latencies_us, 0.5), Quantile(latencies_us, 0.9),
      Quantile(latencies_us, 0.99), Quantile(latencies_us, 1.0));
  std::printf("streaming == batch segmentation: %s\n\n",
              identical ? "IDENTICAL" : "MISMATCH — BUG");
  ctx.report.Set("stream.records", static_cast<int64_t>(total_records));
  ctx.report.Set("stream.seconds", stream_seconds);
  ctx.report.Set("stream.events_per_sec", events_per_sec);
  ctx.report.Set("stream.latency_us.p50", Quantile(latencies_us, 0.5));
  ctx.report.Set("stream.latency_us.p90", Quantile(latencies_us, 0.9));
  ctx.report.Set("stream.latency_us.p99", Quantile(latencies_us, 0.99));
  ctx.report.Set("stream.latency_us.max", Quantile(latencies_us, 1.0));
  ctx.report.Set("stream.identical", identical);

  // ---- Phase 2: incremental vs naive recompute-per-trainer. ----
  // The naive baseline rebuilds the graphlet set from scratch (batch
  // SegmentTrace over the replica store) every time a trainer appears in
  // the feed — what a dashboard polling the store would do. Quadratic in
  // trainers, hence the pipeline cap.
  const size_t naive_pipelines = std::min<size_t>(
      static_cast<size_t>(std::max(1, ctx.options.stream_naive_pipelines)),
      ctx.corpus.pipelines.size());
  double naive_seconds = 0.0;
  double incremental_seconds = 0.0;
  for (size_t p = 0; p < naive_pipelines; ++p) {
    const sim::PipelineTrace& trace = ctx.corpus.pipelines[p];
    RecordingSink feed;
    sim::ProvenanceFeeder feeder(&feed);
    feeder.Finish(trace);

    {
      const auto t0 = Clock::now();
      stream::SessionOptions options;
      options.segmenter.seal_grace_hours =
          ctx.options.stream_seal_grace_hours;
      stream::ProvenanceSession session(options);
      for (const sim::ProvenanceRecord& record : feed.records) {
        (void)session.Ingest(record);
      }
      auto result = session.Finish();
      incremental_seconds +=
          std::chrono::duration<double>(Clock::now() - t0).count();
      if (!result.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
    }
    {
      const auto t0 = Clock::now();
      metadata::MetadataStore replica;
      std::vector<core::Graphlet> last;
      for (const sim::ProvenanceRecord& record : feed.records) {
        switch (record.kind) {
          case sim::ProvenanceRecord::Kind::kContext:
            replica.PutContext(record.context);
            break;
          case sim::ProvenanceRecord::Kind::kExecution:
            replica.PutExecution(record.execution);
            if (record.execution.type ==
                metadata::ExecutionType::kTrainer) {
              last = core::SegmentTrace(replica);
            }
            break;
          case sim::ProvenanceRecord::Kind::kArtifact:
            replica.PutArtifact(record.artifact);
            break;
          case sim::ProvenanceRecord::Kind::kEvent:
            (void)replica.PutEvent(record.event);
            break;
        }
      }
      last = core::SegmentTrace(replica);
      naive_seconds +=
          std::chrono::duration<double>(Clock::now() - t0).count();
    }
  }
  const double speedup =
      incremental_seconds > 0.0 ? naive_seconds / incremental_seconds : 0.0;
  std::printf(
      "incremental vs naive (first %zu pipelines): %.3fs vs %.3fs "
      "-> %.1fx speedup (acceptance: >= 10x)\n\n",
      naive_pipelines, incremental_seconds, naive_seconds, speedup);
  ctx.report.Set("stream.naive_pipelines",
                 static_cast<int64_t>(naive_pipelines));
  ctx.report.Set("stream.naive_seconds", naive_seconds);
  ctx.report.Set("stream.incremental_seconds", incremental_seconds);
  ctx.report.Set("stream.speedup_vs_naive", speedup);

  // ---- Phase 3: online scoring replay with waste accounting. ----
  const core::SegmentedCorpus segmented = core::SegmentCorpus(ctx.corpus);
  auto dataset = core::BuildWasteDataset(ctx.corpus, segmented);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  stream::OnlineScorerOptions scorer_options;
  scorer_options.mitigation.forest.num_trees = ctx.options.trees;
  scorer_options.policy_variant = *policy;
  auto scorer = stream::OnlineScorer::Train(*dataset, scorer_options);
  if (!scorer.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 scorer.status().ToString().c_str());
    return 1;
  }
  stream::WasteAccounting waste;
  double scoring_seconds = 0.0;
  // Aggregated session-health snapshot for the report's "health" object.
  uint64_t health_records = 0, health_cells = 0, health_sealed = 0;
  uint64_t health_open = 0, health_reseals = 0, health_decisions = 0;
  uint64_t health_pending = 0, health_poisoned = 0;
  double max_seal_lag_hours = 0.0;
  for (const sim::PipelineTrace& trace : ctx.corpus.pipelines) {
    stream::SessionOptions options;
    options.segmenter.seal_grace_hours =
        ctx.options.stream_seal_grace_hours;
    options.scorer = &*scorer;
    // One scoring session per trace: safe to close the causal flows the
    // simulator's trainer spans opened (phases 1 and 2 replayed the same
    // traces without flows, so each flow finishes exactly once).
    options.emit_flows = true;
    char session_name[32];
    std::snprintf(session_name, sizeof(session_name), "p%lld",
                  static_cast<long long>(trace.config.pipeline_id));
    options.name = session_name;
    stream::ProvenanceSession session(options);
    const auto t0 = Clock::now();
    const common::Status replayed = stream::ReplayTrace(trace, session);
    auto result = session.Finish();
    scoring_seconds +=
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (!replayed.ok() || !result.ok()) {
      std::fprintf(stderr, "error: scoring replay failed\n");
      return 1;
    }
    session.PublishHealth();
    const stream::SessionHealth health = session.Health();
    health_records += health.records;
    health_cells += health.cells;
    health_sealed += health.sealed;
    health_open += health.open_cells;
    health_reseals += health.reseals;
    health_decisions += health.decisions;
    health_pending += health.pending_decisions;
    health_poisoned += health.poisoned ? 1 : 0;
    max_seal_lag_hours = std::max(max_seal_lag_hours, health.seal_lag_hours);
    waste.decisions += result->waste.decisions;
    waste.aborts += result->waste.aborts;
    waste.lost_pushes += result->waste.lost_pushes;
    waste.avoided_hours += result->waste.avoided_hours;
  }
  {
    obs::Json health = obs::Json::Object();
    health.Set("sessions",
               static_cast<uint64_t>(ctx.corpus.pipelines.size()));
    health.Set("records", health_records);
    health.Set("cells", health_cells);
    health.Set("sealed", health_sealed);
    health.Set("open_cells", health_open);
    health.Set("reseals", health_reseals);
    health.Set("decisions", health_decisions);
    health.Set("pending_decisions", health_pending);
    health.Set("poisoned", health_poisoned);
    health.Set("max_seal_lag_hours", max_seal_lag_hours);
    ctx.report.SetHealth(std::move(health));
  }
  std::printf(
      "online scoring (policy %s, grace %.0fh): %zu decisions, "
      "%zu aborts, %.0f machine-hours avoided, %zu lost pushes "
      "(%.3fs replay)\n",
      core::ToString(*policy), ctx.options.stream_seal_grace_hours,
      waste.decisions, waste.aborts, waste.avoided_hours,
      waste.lost_pushes, scoring_seconds);
  ctx.report.Set("scoring.policy", core::ToString(*policy));
  ctx.report.Set("scoring.seal_grace_hours",
                 ctx.options.stream_seal_grace_hours);
  ctx.report.Set("scoring.decisions",
                 static_cast<int64_t>(waste.decisions));
  ctx.report.Set("scoring.aborts", static_cast<int64_t>(waste.aborts));
  ctx.report.Set("scoring.lost_pushes",
                 static_cast<int64_t>(waste.lost_pushes));
  ctx.report.Set("scoring.avoided_hours", waste.avoided_hours);
  ctx.report.Set("scoring.seconds", scoring_seconds);

  // ---- Phase 4: serialized-corpus ingest, text vs binary zero-copy. ----
  // A session fed from a serialized corpus: the text path materializes a
  // MetadataStore (parse + copy every string) and replays it; the binary
  // path walks the MLPB columns with BinaryStoreCursor and hands
  // zero-copy RecordRef views straight to Ingest. Both must produce
  // byte-identical replicas and fingerprints — asserted below, along with
  // the lossless text -> binary -> text round trip.
  std::vector<std::string> texts, binaries;
  texts.reserve(ctx.corpus.pipelines.size());
  binaries.reserve(ctx.corpus.pipelines.size());
  size_t text_bytes = 0, binary_bytes = 0;
  bool round_trip_identical = true;
  for (const sim::PipelineTrace& trace : ctx.corpus.pipelines) {
    texts.push_back(metadata::SerializeStore(trace.store));
    binaries.push_back(metadata::SerializeStoreBinary(trace.store));
    text_bytes += texts.back().size();
    binary_bytes += binaries.back().size();
    auto decoded = metadata::DeserializeStoreBinary(binaries.back());
    round_trip_identical =
        round_trip_identical && decoded.ok() &&
        metadata::SerializeStore(*decoded) == texts.back();
  }

  // Decode stage: serialized bytes -> record stream. This is the work
  // the binary format removes; the text side must build the whole store
  // before a single record can be replayed.
  size_t serialized_records = 0;
  double text_decode_seconds = 0.0;
  for (const std::string& text : texts) {
    const auto t0 = Clock::now();
    auto store = metadata::DeserializeStore(text);
    text_decode_seconds +=
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (!store.ok()) {
      std::fprintf(stderr, "error: text decode: %s\n",
                   store.status().ToString().c_str());
      return 1;
    }
  }
  double binary_decode_seconds = 0.0;
  for (const std::string& binary : binaries) {
    const auto t0 = Clock::now();
    auto cursor = metadata::BinaryStoreCursor::Open(binary);
    size_t n = 0;
    metadata::RecordRef record;
    while (cursor.ok() && cursor->Next(&record)) ++n;
    binary_decode_seconds +=
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (!cursor.ok() || !cursor->status().ok()) {
      std::fprintf(stderr, "error: binary decode failed\n");
      return 1;
    }
    serialized_records += n;
  }

  // End-to-end stage: serialized bytes -> finished analysis.
  bool formats_identical = true;
  double text_e2e_seconds = 0.0, binary_e2e_seconds = 0.0;
  std::vector<uint64_t> text_prints(texts.size());
  for (size_t i = 0; i < texts.size(); ++i) {
    const auto t0 = Clock::now();
    auto store = metadata::DeserializeStore(texts[i]);
    stream::ProvenanceSession session;
    if (!store.ok() || !stream::ReplayStore(*store, session).ok()) {
      std::fprintf(stderr, "error: text replay failed\n");
      return 1;
    }
    auto result = session.Finish();
    text_e2e_seconds +=
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (!result.ok()) return 1;
    text_prints[i] = stream::FingerprintGraphlets(result->graphlets);
  }
  for (size_t i = 0; i < binaries.size(); ++i) {
    const auto t0 = Clock::now();
    auto cursor = metadata::BinaryStoreCursor::Open(binaries[i]);
    stream::ProvenanceSession session;
    metadata::RecordRef record;
    bool ok = cursor.ok();
    while (ok && cursor->Next(&record)) {
      ok = session.Ingest(record).ok();
    }
    auto result = session.Finish();
    binary_e2e_seconds +=
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (!ok || !cursor->status().ok() || !result.ok()) {
      std::fprintf(stderr, "error: binary replay failed\n");
      return 1;
    }
    formats_identical =
        formats_identical &&
        stream::FingerprintGraphlets(result->graphlets) == text_prints[i];
  }

  const double decode_ratio = binary_decode_seconds > 0.0
                                  ? text_decode_seconds / binary_decode_seconds
                                  : 0.0;
  const double e2e_ratio =
      binary_e2e_seconds > 0.0 ? text_e2e_seconds / binary_e2e_seconds : 0.0;
  const double size_ratio =
      binary_bytes > 0 ? static_cast<double>(text_bytes) / binary_bytes : 0.0;
  std::printf(
      "serialized ingest (%zu records): decode %.3fs text vs %.3fs binary "
      "-> %.1fx record throughput (acceptance: >= 10x)\n",
      serialized_records, text_decode_seconds, binary_decode_seconds,
      decode_ratio);
  std::printf(
      "end-to-end (decode + session + finish): %.3fs text vs %.3fs binary "
      "-> %.1fx\n",
      text_e2e_seconds, binary_e2e_seconds, e2e_ratio);
  std::printf("corpus size: %.1f MB text vs %.1f MB binary (%.1fx)\n",
              text_bytes / 1e6, binary_bytes / 1e6, size_ratio);
  std::printf("text -> binary -> text round trip: %s\n",
              round_trip_identical ? "IDENTICAL" : "MISMATCH — BUG");
  std::printf("analyses across formats: %s\n\n",
              formats_identical ? "IDENTICAL" : "MISMATCH — BUG");
  ctx.report.Set("serialized.records",
                 static_cast<int64_t>(serialized_records));
  ctx.report.Set("serialized.text_decode_seconds", text_decode_seconds);
  ctx.report.Set("serialized.binary_decode_seconds", binary_decode_seconds);
  ctx.report.Set("serialized.binary_records_per_sec",
                 binary_decode_seconds > 0.0
                     ? serialized_records / binary_decode_seconds
                     : 0.0);
  ctx.report.Set("serialized.throughput_ratio", decode_ratio);
  ctx.report.Set("serialized.text_e2e_seconds", text_e2e_seconds);
  ctx.report.Set("serialized.binary_e2e_seconds", binary_e2e_seconds);
  ctx.report.Set("serialized.e2e_ratio", e2e_ratio);
  ctx.report.Set("serialized.text_bytes", static_cast<int64_t>(text_bytes));
  ctx.report.Set("serialized.binary_bytes",
                 static_cast<int64_t>(binary_bytes));
  ctx.report.Set("serialized.size_ratio", size_ratio);
  ctx.report.Set("serialized.round_trip_identical", round_trip_identical);
  ctx.report.Set("serialized.formats_identical", formats_identical);

  // ---- Phase 5: durable ingest (WAL + checkpoints), opt-in. ----
  // With --wal_dir every pipeline journals into <dir>/p<id>/ before
  // mutating session state. A --crash_after_records=N run SIGKILLs
  // itself mid-ingest; re-running the same command line without the
  // crash flag recovers from the surviving WALs/checkpoints, resumes,
  // and must land on the exact batch fingerprints (the CI smoke).
  bool durable_identical = true;
  if (!ctx.options.wal_dir.empty()) {
    const auto sync = stream::ParseWalSyncPolicy(ctx.options.wal_sync);
    if (!sync.ok()) {
      std::fprintf(stderr, "error: --wal_sync: %s\n",
                   sync.status().ToString().c_str());
      return 2;
    }
    int64_t crash_budget = ctx.options.crash_after_records;
    size_t durable_records = 0;
    double durable_seconds = 0.0;
    uint64_t replayed = 0, recovered_sessions = 0;
    for (const sim::PipelineTrace& trace : ctx.corpus.pipelines) {
      RecordingSink feed;
      sim::ProvenanceFeeder feeder(&feed);
      feeder.Finish(trace);

      stream::DurableOptions durable;
      durable.wal.dir =
          ctx.options.wal_dir + "/p" +
          std::to_string(trace.config.pipeline_id);
      durable.wal.sync = *sync;
      durable.checkpoint_interval = static_cast<uint64_t>(
          std::max<int64_t>(0, ctx.options.checkpoint_interval));
      durable.session.segmenter.seal_grace_hours =
          ctx.options.stream_seal_grace_hours;
      auto opened = stream::DurableSession::Open(durable);
      if (!opened.ok()) {
        std::fprintf(stderr, "error: durable open: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      replayed += opened->recovery().replayed_records;
      recovered_sessions += opened->recovery().recovered ? 1 : 0;
      const auto t0 = Clock::now();
      for (uint64_t i = opened->records(); i < feed.records.size(); ++i) {
        if (crash_budget > 0 && --crash_budget == 0) {
          // Die the hard way — no atexit, no flush, WAL tail possibly
          // torn. Exactly the failure recovery must absorb.
          ::kill(::getpid(), SIGKILL);
        }
        const common::Status status = opened->Ingest(feed.records[i]);
        if (!status.ok()) {
          std::fprintf(stderr, "error: durable ingest: %s\n",
                       status.ToString().c_str());
          return 1;
        }
      }
      auto result = opened->Finish();
      durable_seconds +=
          std::chrono::duration<double>(Clock::now() - t0).count();
      if (!result.ok()) {
        std::fprintf(stderr, "error: durable finish: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      durable_records += feed.records.size();
      durable_identical = durable_identical &&
                          stream::FingerprintGraphlets(result->graphlets) ==
                              stream::FingerprintGraphlets(
                                  core::SegmentTrace(trace.store));
    }
    const double durable_rate = durable_seconds > 0.0
                                    ? durable_records / durable_seconds
                                    : 0.0;
    std::printf(
        "durable ingest (sync %s, checkpoint every %lld): %zu records "
        "in %.3fs (%.0f records/s, %.2fx of plain)\n",
        stream::ToString(*sync),
        static_cast<long long>(ctx.options.checkpoint_interval),
        durable_records, durable_seconds, durable_rate,
        events_per_sec > 0.0 ? durable_rate / events_per_sec : 0.0);
    std::printf(
        "recovery: %llu sessions recovered, %llu records replayed\n",
        static_cast<unsigned long long>(recovered_sessions),
        static_cast<unsigned long long>(replayed));
    std::printf("durable == batch segmentation: %s\n\n",
                durable_identical ? "IDENTICAL" : "MISMATCH — BUG");
    ctx.report.Set("durable.sync", stream::ToString(*sync));
    ctx.report.Set("durable.checkpoint_interval",
                   ctx.options.checkpoint_interval);
    ctx.report.Set("durable.records",
                   static_cast<int64_t>(durable_records));
    ctx.report.Set("durable.seconds", durable_seconds);
    ctx.report.Set("durable.events_per_sec", durable_rate);
    ctx.report.Set("durable.vs_plain_ratio",
                   events_per_sec > 0.0 ? durable_rate / events_per_sec
                                        : 0.0);
    ctx.report.Set("durable.identical", durable_identical);
    ctx.report.Set("recovery.recovered_sessions",
                   static_cast<int64_t>(recovered_sessions));
    ctx.report.Set("recovery.replayed_records",
                   static_cast<int64_t>(replayed));
  }
  // ---- Phase 6: sharded multi-session service, opt-in (--shards=N). ----
  // Sweeps shard counts (powers of two up to N, plus N) through
  // ShardedProvenanceService and reports aggregate ingest throughput and
  // the speedup over the 1-shard run. Every sweep point must merge to
  // the exact batch segmentation — the identity bit below is part of the
  // exit code, like every other identity in this binary. The binary
  // sweep reuses the phase-4 MLPB blobs so the zero-copy path shards too.
  bool sharded_identical = true;
  if (ctx.options.shards > 0) {
    const auto backpressure =
        stream::ParseBackpressurePolicy(ctx.options.backpressure);
    if (!backpressure.ok()) {
      std::fprintf(stderr, "error: --backpressure: %s\n",
                   backpressure.status().ToString().c_str());
      return 2;
    }
    const size_t max_shards = static_cast<size_t>(ctx.options.shards);
    std::vector<size_t> sweep;
    for (size_t s = 1; s < max_shards; s <<= 1) sweep.push_back(s);
    sweep.push_back(max_shards);

    const uint64_t batch_print = FingerprintSegmented(segmented);
    // Identity under kShed is per *surviving* slot (the merge is a
    // documented subset once pipelines are shed); under kBlock nothing
    // sheds and this is exactly full-corpus fingerprint identity.
    const auto surviving_slots_identical =
        [&](const stream::ShardedResult& r) {
          for (const stream::ShardPipelineResult& p : r.pipelines) {
            if (p.shed) continue;
            const core::SegmentedPipeline& ref = segmented.pipelines[p.slot];
            if (stream::FingerprintGraphlets(p.result.graphlets) !=
                    stream::FingerprintGraphlets(ref.graphlets) ||
                p.quarantined_graphlets != ref.quarantined_graphlets) {
              return false;
            }
          }
          return true;
        };
    double one_shard_rate = 0.0, top_rate = 0.0;
    uint64_t top_stalls = 0;
    size_t top_queue_peak = 0;
    std::printf("sharded ingest (backpressure %s, queue %lld):\n",
                stream::ToString(*backpressure),
                static_cast<long long>(ctx.options.shard_queue_capacity));
    for (const size_t shards : sweep) {
      stream::ShardRouterOptions shard_options;
      shard_options.shards = shards;
      shard_options.queue_capacity = static_cast<size_t>(
          std::max<int64_t>(2, ctx.options.shard_queue_capacity));
      shard_options.backpressure = *backpressure;
      shard_options.session.segmenter.seal_grace_hours =
          ctx.options.stream_seal_grace_hours;
      stream::ShardedProvenanceService service(shard_options);
      const auto t0 = Clock::now();
      auto result = service.IngestCorpus(ctx.corpus);
      const double seconds =
          std::chrono::duration<double>(Clock::now() - t0).count();
      if (!result.ok()) {
        std::fprintf(stderr, "error: sharded ingest: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      const common::Status first_error = result->FirstError();
      if (!first_error.ok()) {
        std::fprintf(stderr, "error: sharded slot: %s\n",
                     first_error.ToString().c_str());
        return 1;
      }
      const bool merged_identical =
          surviving_slots_identical(*result) &&
          (result->shed_pipelines > 0 ||
           FingerprintSegmented(result->ToSegmentedCorpus()) == batch_print);
      sharded_identical = sharded_identical && merged_identical;
      const double rate =
          seconds > 0.0 ? static_cast<double>(result->records) / seconds
                        : 0.0;
      if (shards == 1) one_shard_rate = rate;
      if (shards == max_shards) {
        top_rate = rate;
        top_stalls = result->backpressure_stalls;
        top_queue_peak = result->queue_depth_peak;
      }
      std::printf(
          "  %3zu shard(s): %llu records in %.3fs (%.0f records/s, "
          "%.2fx of 1 shard, %llu stalls, %zu shed, queue peak %zu) %s\n",
          shards, static_cast<unsigned long long>(result->records), seconds,
          rate, one_shard_rate > 0.0 ? rate / one_shard_rate : 0.0,
          static_cast<unsigned long long>(result->backpressure_stalls),
          result->shed_pipelines, result->queue_depth_peak,
          merged_identical ? "IDENTICAL" : "MISMATCH — BUG");
      char key[64];
      std::snprintf(key, sizeof(key), "sharded.sweep.%zu.records_per_sec",
                    shards);
      ctx.report.Set(key, rate);
    }
    const double shard_speedup =
        one_shard_rate > 0.0 ? top_rate / one_shard_rate : 0.0;
    std::printf("sharded == batch segmentation: %s\n",
                sharded_identical ? "IDENTICAL" : "MISMATCH — BUG");
    std::printf("sharded speedup at %zu shards: %.2fx\n", max_shards,
                shard_speedup);
    ctx.report.Set("sharded.shards", static_cast<int64_t>(max_shards));
    ctx.report.Set("sharded.queue_capacity",
                   ctx.options.shard_queue_capacity);
    ctx.report.Set("sharded.backpressure",
                   stream::ToString(*backpressure));
    ctx.report.Set("sharded.records_per_sec", top_rate);
    ctx.report.Set("sharded.one_shard_records_per_sec", one_shard_rate);
    ctx.report.Set("sharded.speedup", shard_speedup);
    ctx.report.Set("sharded.identical", sharded_identical);
    ctx.report.Set("sharded.backpressure_stalls",
                   static_cast<int64_t>(top_stalls));
    ctx.report.Set("sharded.queue_depth_peak",
                   static_cast<int64_t>(top_queue_peak));

    // Sharded zero-copy: route the phase-4 blobs whole, decode inside
    // the owning shard.
    {
      std::vector<stream::ShardedProvenanceService::BinaryPipeline> blobs;
      blobs.reserve(binaries.size());
      for (size_t i = 0; i < binaries.size(); ++i) {
        blobs.push_back({ctx.corpus.pipelines[i].config.pipeline_id,
                         binaries[i]});
      }
      stream::ShardRouterOptions shard_options;
      shard_options.shards = max_shards;
      shard_options.queue_capacity = static_cast<size_t>(
          std::max<int64_t>(2, ctx.options.shard_queue_capacity));
      shard_options.backpressure = *backpressure;
      shard_options.session.segmenter.seal_grace_hours =
          ctx.options.stream_seal_grace_hours;
      stream::ShardedProvenanceService service(shard_options);
      const auto t0 = Clock::now();
      auto result = service.IngestBinary(blobs);
      const double seconds =
          std::chrono::duration<double>(Clock::now() - t0).count();
      if (!result.ok() || !result->FirstError().ok()) {
        std::fprintf(stderr, "error: sharded binary ingest failed\n");
        return 1;
      }
      const bool binary_identical =
          FingerprintSegmented(result->ToSegmentedCorpus()) == batch_print;
      sharded_identical = sharded_identical && binary_identical;
      // Blobs are routed whole and decoded inside the owning shard, so
      // the record count lives in the slots, not the router tally.
      uint64_t binary_records = 0;
      for (const stream::ShardPipelineResult& p : result->pipelines) {
        binary_records += p.records;
      }
      const double rate =
          seconds > 0.0 ? static_cast<double>(binary_records) / seconds
                        : 0.0;
      std::printf(
          "sharded binary ingest (%zu shards): %llu records in %.3fs "
          "(%.0f records/s) %s\n\n",
          max_shards, static_cast<unsigned long long>(binary_records),
          seconds, rate,
          binary_identical ? "IDENTICAL" : "MISMATCH — BUG");
      ctx.report.Set("sharded.binary_records_per_sec", rate);
      ctx.report.Set("sharded.binary_identical", binary_identical);
    }
  }
  return identical && round_trip_identical && formats_identical &&
                 durable_identical && sharded_identical
             ? 0
             : 1;
}

}  // namespace
}  // namespace mlprov

int main(int argc, char** argv) { return mlprov::Run(argc, argv); }
