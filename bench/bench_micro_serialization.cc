// Microbenchmarks for the trace serialization substrate: text vs MLPB
// binary serialize/deserialize throughput over a simulated pipeline
// trace, the zero-copy cursor walk, and the on-disk size ratio (recorded
// in the report by the extra hook).
#include <benchmark/benchmark.h>

#include <string>

#include "bench/micro_common.h"
#include "common/rng.h"
#include "metadata/binary_serialization.h"
#include "metadata/serialization.h"
#include "simulator/pipeline_simulator.h"

namespace mlprov {
namespace {

/// One deterministic simulated pipeline trace, shared by every benchmark
/// (the store's shape is what the format is optimized for).
const metadata::MetadataStore& BenchStore() {
  static const metadata::MetadataStore* store = [] {
    sim::CorpusConfig corpus_config;
    corpus_config.seed = 7;
    common::Rng rng(corpus_config.seed);
    sim::PipelineConfig config =
        sim::SamplePipelineConfig(corpus_config, 0, rng);
    config.lifespan_days = 30.0;
    auto* trace = new sim::PipelineTrace(
        sim::SimulatePipeline(corpus_config, config, sim::CostModel()));
    return &trace->store;
  }();
  return *store;
}

const std::string& TextCorpus() {
  static const std::string* text =
      new std::string(metadata::SerializeStore(BenchStore()));
  return *text;
}

const std::string& BinaryCorpus() {
  static const std::string* binary =
      new std::string(metadata::SerializeStoreBinary(BenchStore()));
  return *binary;
}

void BM_SerializeText(benchmark::State& state) {
  const metadata::MetadataStore& store = BenchStore();
  size_t bytes = 0;
  for (auto _ : state) {
    const std::string out = metadata::SerializeStore(store);
    bytes = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes) * state.iterations());
}
BENCHMARK(BM_SerializeText);

void BM_SerializeBinary(benchmark::State& state) {
  const metadata::MetadataStore& store = BenchStore();
  size_t bytes = 0;
  for (auto _ : state) {
    const std::string out = metadata::SerializeStoreBinary(store);
    bytes = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes) * state.iterations());
}
BENCHMARK(BM_SerializeBinary);

void BM_DeserializeText(benchmark::State& state) {
  const std::string& text = TextCorpus();
  for (auto _ : state) {
    auto store = metadata::DeserializeStore(text);
    benchmark::DoNotOptimize(store.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(text.size()) *
                          state.iterations());
}
BENCHMARK(BM_DeserializeText);

void BM_DeserializeBinary(benchmark::State& state) {
  const std::string& binary = BinaryCorpus();
  for (auto _ : state) {
    auto store = metadata::DeserializeStoreBinary(binary);
    benchmark::DoNotOptimize(store.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(binary.size()) *
                          state.iterations());
}
BENCHMARK(BM_DeserializeBinary);

void BM_CursorWalk(benchmark::State& state) {
  const std::string& binary = BinaryCorpus();
  for (auto _ : state) {
    auto cursor = metadata::BinaryStoreCursor::Open(binary);
    size_t records = 0;
    metadata::RecordRef record;
    while (cursor.ok() && cursor->Next(&record)) ++records;
    benchmark::DoNotOptimize(records);
  }
  state.SetBytesProcessed(static_cast<int64_t>(binary.size()) *
                          state.iterations());
}
BENCHMARK(BM_CursorWalk);

}  // namespace
}  // namespace mlprov

int main(int argc, char** argv) {
  return mlprov::bench::MicrobenchMain(
      argc, argv,
      [](const mlprov::common::Flags&, mlprov::obs::BenchReport& report) {
        const std::string& text = mlprov::TextCorpus();
        const std::string& binary = mlprov::BinaryCorpus();
        report.Set("size.text_bytes", static_cast<int64_t>(text.size()));
        report.Set("size.binary_bytes",
                   static_cast<int64_t>(binary.size()));
        report.Set("size.ratio",
                   binary.empty()
                       ? 0.0
                       : static_cast<double>(text.size()) / binary.size());
      });
}
