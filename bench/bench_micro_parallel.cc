// Microbenchmarks for the parallel execution backbone: raw ParallelFor
// dispatch overhead (empty bodies, so pure scheduling cost) and the
// corpus-generation scaling curve at 1/2/4/8 threads. The scaling sweep
// also cross-checks the determinism contract: every thread count must
// produce a byte-identical serialized corpus.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench/micro_common.h"
#include "bench/report_common.h"
#include "common/parallel.h"
#include "metadata/serialization.h"
#include "simulator/corpus_generator.h"

namespace mlprov {
namespace {

void BM_ParallelForEmpty(benchmark::State& state) {
  common::SetGlobalThreads(static_cast<int>(state.range(0)));
  constexpr size_t kIterations = 1000000;
  for (auto _ : state) {
    common::ParallelFor(kIterations, [](size_t i) {
      benchmark::DoNotOptimize(i);
    });
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * kIterations));
  common::SetGlobalThreads(1);
}
BENCHMARK(BM_ParallelForEmpty)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelForChunked(benchmark::State& state) {
  // Same dispatch with an explicit coarse grain: what a caller pays when
  // it batches cheap work properly.
  common::SetGlobalThreads(static_cast<int>(state.range(0)));
  constexpr size_t kIterations = 1000000;
  for (auto _ : state) {
    common::ParallelFor(
        kIterations, [](size_t i) { benchmark::DoNotOptimize(i); },
        /*grain=*/4096);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * kIterations));
  common::SetGlobalThreads(1);
}
BENCHMARK(BM_ParallelForChunked)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

/// Corpus digest: FNV-1a over each pipeline's serialized store, chained
/// in pipeline order, so both content and ordering are covered.
uint64_t CorpusFingerprint(const sim::Corpus& corpus) {
  uint64_t h = 1469598103934665603ull;
  for (const sim::PipelineTrace& trace : corpus.pipelines) {
    const std::string text = metadata::SerializeStore(trace.store);
    for (const char c : text) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
  }
  return h;
}

/// Corpus-generation scaling sweep, recorded into the bench report:
/// corpus_gen.seconds_t{1,2,4,8}, corpus_gen.speedup_8, and a
/// determinism verdict comparing fingerprints across thread counts.
void ScalingSweep(const common::Flags& flags, obs::BenchReport& report) {
  const sim::CorpusConfig config =
      bench::Options::Parse(flags, /*default_pipelines=*/120).config;

  const std::vector<int> thread_counts = {1, 2, 4, 8};
  double seconds_t1 = 0.0;
  double seconds_t8 = 0.0;
  uint64_t baseline_fp = 0;
  bool deterministic = true;
  std::printf("\ncorpus generation scaling (%d pipelines):\n",
              config.num_pipelines);
  for (const int threads : thread_counts) {
    common::SetGlobalThreads(threads);
    const obs::Stopwatch watch;
    const sim::Corpus corpus = sim::GenerateCorpus(config);
    const double seconds = watch.Seconds();
    const uint64_t fp = CorpusFingerprint(corpus);
    if (threads == 1) {
      seconds_t1 = seconds;
      baseline_fp = fp;
    } else if (fp != baseline_fp) {
      deterministic = false;
    }
    if (threads == 8) seconds_t8 = seconds;
    std::printf("  threads=%d: %.3fs (%.2fx)\n", threads, seconds,
                seconds > 0.0 ? seconds_t1 / seconds : 0.0);
    report.Set("corpus_gen.seconds_t" + std::to_string(threads), seconds);
  }
  common::SetGlobalThreads(1);
  const double speedup_8 =
      seconds_t8 > 0.0 ? seconds_t1 / seconds_t8 : 0.0;
  report.Set("corpus_gen.speedup_8", speedup_8);
  report.Set("corpus_gen.deterministic", deterministic);
  report.SetParallelism(8, speedup_8);
  std::printf("  deterministic across thread counts: %s\n",
              deterministic ? "yes" : "NO — BUG");
}

}  // namespace mlprov

int main(int argc, char** argv) {
  return mlprov::bench::MicrobenchMain(argc, argv,
                                       mlprov::ScalingSweep);
}
