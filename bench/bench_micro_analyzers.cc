// Ablation for the Section 4.2.1 optimization opportunity: consecutive
// graphlets share most of their input spans, so the first-stage analyzer
// reductions (vocabulary, moments) can be maintained incrementally over
// the rolling window instead of recomputed from scratch per trigger.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/micro_common.h"
#include "common/rng.h"
#include "dataspan/analyzers.h"

namespace mlprov {
namespace {

std::vector<int64_t> TermStream(size_t n) {
  common::Rng rng(5);
  std::vector<int64_t> stream(n);
  for (int64_t& t : stream) t = rng.Zipf(100000, 1.2);
  return stream;
}

/// Recompute-from-scratch: every window slide rebuilds the vocabulary
/// over all `window` terms.
void BM_VocabularyRecompute(benchmark::State& state) {
  const auto window = static_cast<size_t>(state.range(0));
  const auto stream = TermStream(window * 4);
  for (auto _ : state) {
    for (size_t i = window; i < stream.size(); ++i) {
      dataspan::VocabularyAnalyzer vocab(100);
      for (size_t j = i - window; j < i; ++j) vocab.AddTerm(stream[j]);
      benchmark::DoNotOptimize(vocab.TopK());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size() - window));
}
BENCHMARK(BM_VocabularyRecompute)->Arg(1000)->Arg(10000);

/// Incremental view maintenance: add the new term, retire the old one.
void BM_VocabularyIncremental(benchmark::State& state) {
  const auto window = static_cast<size_t>(state.range(0));
  const auto stream = TermStream(window * 4);
  for (auto _ : state) {
    dataspan::VocabularyAnalyzer vocab(100);
    for (size_t j = 0; j < window; ++j) vocab.AddTerm(stream[j]);
    for (size_t i = window; i < stream.size(); ++i) {
      vocab.AddTerm(stream[i]);
      vocab.RetireTerm(stream[i - window]);
      benchmark::DoNotOptimize(vocab.TopK());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size() - window));
}
BENCHMARK(BM_VocabularyIncremental)->Arg(1000)->Arg(10000);

void BM_MomentsRecompute(benchmark::State& state) {
  common::Rng rng(9);
  std::vector<double> samples(40000);
  for (double& x : samples) x = rng.Normal();
  const size_t window = 10000;
  for (auto _ : state) {
    for (size_t i = window; i < samples.size(); i += 100) {
      dataspan::MomentsAnalyzer m;
      for (size_t j = i - window; j < i; ++j) m.AddSample(samples[j]);
      benchmark::DoNotOptimize(m.StdDev());
    }
  }
}
BENCHMARK(BM_MomentsRecompute);

void BM_MomentsIncremental(benchmark::State& state) {
  common::Rng rng(9);
  std::vector<double> samples(40000);
  for (double& x : samples) x = rng.Normal();
  const size_t window = 10000;
  for (auto _ : state) {
    dataspan::MomentsAnalyzer m;
    for (size_t j = 0; j < window; ++j) m.AddSample(samples[j]);
    for (size_t i = window; i < samples.size(); ++i) {
      m.AddSample(samples[i]);
      m.RetireSample(samples[i - window]);
      if (i % 100 == 0) benchmark::DoNotOptimize(m.StdDev());
    }
  }
}
BENCHMARK(BM_MomentsIncremental);

void BM_QuantilesReservoir(benchmark::State& state) {
  common::Rng rng(11);
  std::vector<double> samples(20000);
  for (double& x : samples) x = rng.Normal();
  for (auto _ : state) {
    dataspan::QuantilesAnalyzer q(1024);
    for (double x : samples) q.AddSample(x);
    benchmark::DoNotOptimize(q.Quantile(0.5));
  }
}
BENCHMARK(BM_QuantilesReservoir);

}  // namespace
}  // namespace mlprov

MLPROV_MICROBENCH_MAIN();
