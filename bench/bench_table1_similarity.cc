// Reproduces Table 1: Jaccard / dataset / per-pipeline-average dataset
// similarity between consecutive model graphlets, histogrammed over the
// paper's four ranges.
#include <cstdio>

#include "bench/report_common.h"

namespace mlprov {
namespace {

void AddRows(common::TextTable& table, const char* name,
             const std::array<double, 4>& paper, double paper_mean,
             const std::array<double, 4>& measured, double measured_mean) {
  using T = common::TextTable;
  std::vector<std::string> paper_row = {std::string(name) + " (paper)"};
  std::vector<std::string> measured_row = {std::string(name) +
                                           " (measured)"};
  for (int i = 0; i < 4; ++i) {
    paper_row.push_back(T::Pct(paper[static_cast<size_t>(i)]));
    measured_row.push_back(T::Pct(measured[static_cast<size_t>(i)]));
  }
  paper_row.push_back(T::Num(paper_mean, 3));
  measured_row.push_back(T::Num(measured_mean, 3));
  table.AddRow(paper_row);
  table.AddRow(measured_row);
}

int Run(int argc, char** argv) {
  bench::ReportContext ctx(argc, argv,
                           "Table 1: consecutive-graphlet similarity", 400);
  const core::SegmentedCorpus segmented = core::SegmentCorpus(ctx.corpus);
  std::printf("segmented into %zu graphlets (%zu pushed)\n\n",
              segmented.TotalGraphlets(), segmented.TotalPushed());

  const core::SimilarityTable measured =
      core::ComputeSimilarityTable(ctx.corpus, segmented);

  common::TextTable table({"similarity", "[0,.25]", "(.25,.5]", "(.5,.75]",
                           "(.75,1]", "mean"});
  AddRows(table, "Jaccard", {0.302, 0.082, 0.044, 0.573}, 0.647,
          measured.jaccard_hist, measured.jaccard_mean);
  AddRows(table, "Dataset", {0.897, 0.003, 0.001, 0.099}, 0.101,
          measured.dataset_hist, measured.dataset_mean);
  AddRows(table, "Avg Dataset", {0.873, 0.05, 0.031, 0.046}, 0.092,
          measured.avg_dataset_hist, measured.avg_dataset_mean);
  std::printf("%s\n(%zu consecutive pairs; the reproduced shape: Jaccard "
              "is bimodal with the\nmass at (.75,1], dataset similarity is "
              "bimodal with the trend reversed.)\n",
              table.Render().c_str(), measured.num_pairs);
  ctx.report.Set("num_pairs", static_cast<int64_t>(measured.num_pairs));
  ctx.report.Set("total_graphlets",
                 static_cast<int64_t>(segmented.TotalGraphlets()));
  ctx.report.Set("jaccard_mean", measured.jaccard_mean);
  ctx.report.Set("dataset_mean", measured.dataset_mean);
  ctx.report.Set("avg_dataset_mean", measured.avg_dataset_mean);
  ctx.report.Set("jaccard_top_bin", measured.jaccard_hist[3]);
  ctx.report.Set("dataset_bottom_bin", measured.dataset_hist[0]);
  return 0;
}

}  // namespace
}  // namespace mlprov

int main(int argc, char** argv) { return mlprov::Run(argc, argv); }
