// Reproduces Figure 4: analyzer usage in feature transformations, as
// (top) the percentage of pipelines referencing each analyzer and
// (bottom) the total usage across all traces.
#include <cstdio>

#include "bench/report_common.h"
#include "core/pipeline_analysis.h"

namespace mlprov {
namespace {

int Run(int argc, char** argv) {
  bench::ReportContext ctx(argc, argv, "Figure 4: analyzer usage");
  const core::AnalyzerUsageStats stats =
      core::ComputeAnalyzerUsage(ctx.corpus);

  double total_usage = 0;
  for (double u : stats.total_usage) total_usage += u;

  using T = common::TextTable;
  T table({"analyzer", "% pipelines referencing", "% of total trace usage"});
  for (int a = 0; a < metadata::kNumAnalyzerTypes; ++a) {
    const auto idx = static_cast<size_t>(a);
    table.AddRow(
        {metadata::ToString(static_cast<metadata::AnalyzerType>(a)),
         T::Pct(static_cast<double>(stats.pipelines_referencing[idx]) /
                static_cast<double>(stats.num_pipelines)),
         T::Pct(total_usage > 0 ? stats.total_usage[idx] / total_usage
                                : 0.0)});
    ctx.report.Set(
        std::string("pipelines_referencing.") +
            metadata::ToString(static_cast<metadata::AnalyzerType>(a)),
        static_cast<double>(stats.pipelines_referencing[idx]) /
            static_cast<double>(stats.num_pipelines));
    ctx.report.Set(
        std::string("usage_share.") +
            metadata::ToString(static_cast<metadata::AnalyzerType>(a)),
        total_usage > 0 ? stats.total_usage[idx] / total_usage : 0.0);
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "paper: vocabulary dominates both views (it runs once per\n"
      "categorical feature over huge domains); custom analyzers appear in\n"
      "several pipelines but contribute a much smaller share of the total\n"
      "usage because they skew towards short-lived experimental "
      "pipelines.\n");
  return 0;
}

}  // namespace
}  // namespace mlprov

int main(int argc, char** argv) { return mlprov::Run(argc, argv); }
