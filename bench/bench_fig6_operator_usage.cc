// Reproduces Figure 6: percentage of pipelines containing each operator.
#include <cstdio>

#include "bench/report_common.h"
#include "core/pipeline_analysis.h"

namespace mlprov {
namespace {

int Run(int argc, char** argv) {
  bench::ReportContext ctx(argc, argv, "Figure 6: operator usage");
  const core::OperatorUsageStats stats =
      core::ComputeOperatorUsage(ctx.corpus);

  using T = common::TextTable;
  T table({"operator", "group", "% pipelines (measured)"});
  for (int t = 0; t < metadata::kNumExecutionTypes; ++t) {
    const auto type = static_cast<metadata::ExecutionType>(t);
    table.AddRow({metadata::ToString(type),
                  metadata::ToString(metadata::GroupOf(type)),
                  T::Pct(stats.Fraction(type))});
    ctx.report.Set(std::string("fraction.") + metadata::ToString(type),
                   stats.Fraction(type));
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "paper: training and deployment appear in 100%% of pipelines (the\n"
      "corpus keeps only pipelines that trained and deployed at least one\n"
      "model); data ingestion and pre-processing are nearly universal;\n"
      "about half of the pipelines employ data- and model-validation\n"
      "operators as safety checks.\n");
  return 0;
}

}  // namespace
}  // namespace mlprov

int main(int argc, char** argv) { return mlprov::Run(argc, argv); }
