// Microbenchmarks for the from-scratch ML substrate: CART, random forest,
// logistic regression, and GBDT fit/predict throughput.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/micro_common.h"
#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/gbdt.h"
#include "ml/logistic_regression.h"
#include "ml/random_forest.h"

namespace mlprov {
namespace {

ml::Dataset MakeData(size_t rows, size_t features, uint64_t seed) {
  std::vector<std::string> names;
  names.reserve(features);
  for (size_t f = 0; f < features; ++f) {
    names.emplace_back("f");
    names.back() += std::to_string(f);
  }
  ml::Dataset data(std::move(names));
  common::Rng rng(seed);
  std::vector<double> row(features);
  for (size_t r = 0; r < rows; ++r) {
    double signal = 0.0;
    for (size_t f = 0; f < features; ++f) {
      row[f] = rng.Normal();
      if (f < 3) signal += row[f];
    }
    data.AddRow(row, rng.Bernoulli(1.0 / (1.0 + std::exp(-signal))) ? 1 : 0,
                static_cast<int64_t>(r / 50));
  }
  return data;
}

void BM_DecisionTreeFit(benchmark::State& state) {
  const ml::Dataset data =
      MakeData(static_cast<size_t>(state.range(0)), 20, 3);
  std::vector<size_t> rows(data.NumRows());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  for (auto _ : state) {
    ml::DecisionTree tree(ml::DecisionTree::Options{});
    common::Rng rng(5);
    tree.Fit(data, rows, nullptr, rng);
    benchmark::DoNotOptimize(tree.NumNodes());
  }
}
BENCHMARK(BM_DecisionTreeFit)->Arg(1000)->Arg(5000);

void BM_RandomForestFit(benchmark::State& state) {
  const ml::Dataset data = MakeData(2000, 20, 7);
  ml::RandomForest::Options options;
  options.num_trees = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ml::RandomForest forest(options);
    forest.Fit(data);
    benchmark::DoNotOptimize(forest.NumTrees());
  }
}
BENCHMARK(BM_RandomForestFit)->Arg(10)->Arg(40);

void BM_RandomForestPredict(benchmark::State& state) {
  const ml::Dataset data = MakeData(2000, 20, 9);
  ml::RandomForest::Options options;
  options.num_trees = 40;
  ml::RandomForest forest(options);
  forest.Fit(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.PredictProba(data, 0));
  }
}
BENCHMARK(BM_RandomForestPredict);

void BM_LogisticRegressionFit(benchmark::State& state) {
  const ml::Dataset data = MakeData(2000, 20, 11);
  for (auto _ : state) {
    ml::LogisticRegression lr{ml::LogisticRegression::Options{}};
    lr.Fit(data);
    benchmark::DoNotOptimize(lr.bias());
  }
}
BENCHMARK(BM_LogisticRegressionFit);

void BM_GbdtFit(benchmark::State& state) {
  const ml::Dataset data = MakeData(2000, 20, 13);
  ml::Gbdt::Options options;
  options.num_rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ml::Gbdt model(options);
    model.Fit(data);
    benchmark::DoNotOptimize(model.NumTrees());
  }
}
BENCHMARK(BM_GbdtFit)->Arg(20);

}  // namespace
}  // namespace mlprov

MLPROV_MICROBENCH_MAIN();
