// Crash-consistent ingestion benchmark: the durability tax of the WAL +
// checkpoint path against the plain in-memory session at each sync
// policy (acceptance: durable >= 90% of plain throughput at
// --wal_sync=interval), and recovery latency as a function of the
// replayed WAL tail — checkpoint interval vs crash offset. Every
// durable and every recovered run is fingerprint-checked against batch
// segmentation (a perf number for a wrong answer is worthless).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/report_common.h"
#include "common/table.h"
#include "core/segmentation.h"
#include "simulator/provenance_sink.h"
#include "stream/fingerprint.h"
#include "stream/session.h"
#include "stream/supervisor.h"
#include "stream/wal.h"

namespace mlprov {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

/// Buffers one pipeline's feed so every run replays identical records
/// without the feeder walk inside the timed section (span stats are
/// borrowed from the trace, which outlives the benchmark).
struct RecordingSink : public sim::ProvenanceSink {
  std::vector<sim::ProvenanceRecord> records;
  void OnRecord(const sim::ProvenanceRecord& record) override {
    records.push_back(record);
  }
};

double Seconds(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

int Run(int argc, char** argv) {
  bench::ReportContext ctx(argc, argv, "Crash-consistent ingestion",
                           /*default_pipelines=*/60);
  const bool keep_wal = !ctx.options.wal_dir.empty();
  const fs::path root =
      keep_wal ? fs::path(ctx.options.wal_dir)
               : fs::temp_directory_path() /
                     ("mlprov_bench_recovery_" +
                      std::to_string(ctx.config.seed));
  std::error_code ec;
  fs::remove_all(root, ec);
  fs::create_directories(root, ec);
  if (ec) {
    std::fprintf(stderr, "error: cannot create %s: %s\n",
                 root.string().c_str(), ec.message().c_str());
    return 1;
  }

  std::vector<RecordingSink> feeds(ctx.corpus.pipelines.size());
  std::vector<uint64_t> expected(ctx.corpus.pipelines.size());
  size_t total_records = 0;
  for (size_t p = 0; p < ctx.corpus.pipelines.size(); ++p) {
    sim::ProvenanceFeeder feeder(&feeds[p]);
    feeder.Finish(ctx.corpus.pipelines[p]);
    expected[p] = stream::FingerprintGraphlets(
        core::SegmentTrace(ctx.corpus.pipelines[p].store));
    total_records += feeds[p].records.size();
  }

  // ---- Phase 1: plain in-memory baseline. ----
  stream::SessionOptions session_options;
  session_options.segmenter.seal_grace_hours =
      ctx.options.stream_seal_grace_hours;
  bool identical = true;
  double plain_seconds = 0.0;
  for (size_t p = 0; p < feeds.size(); ++p) {
    stream::ProvenanceSession session(session_options);
    const auto t0 = Clock::now();
    for (const sim::ProvenanceRecord& record : feeds[p].records) {
      (void)session.Ingest(record);
    }
    auto result = session.Finish();
    plain_seconds += Seconds(t0);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    identical = identical &&
                stream::FingerprintGraphlets(result->graphlets) ==
                    expected[p];
  }
  const double plain_rate =
      plain_seconds > 0.0 ? total_records / plain_seconds : 0.0;
  std::printf("plain ingest: %zu records in %.3fs (%.0f records/s)\n\n",
              total_records, plain_seconds, plain_rate);
  ctx.report.Set("recovery.records",
                 static_cast<int64_t>(total_records));
  ctx.report.Set("recovery.plain_seconds", plain_seconds);
  ctx.report.Set("recovery.plain_records_per_sec", plain_rate);

  // ---- Phase 2: durability tax per sync policy. ----
  // The three sync rows run WAL-only (checkpoint interval 0): the WAL
  // alone makes ingest durable, checkpoints only bound recovery time.
  // The fourth row prices the checkpointed configuration — periodic
  // full-state snapshots at --checkpoint_interval are a deliberate
  // recovery-latency/throughput trade, reported separately so the WAL
  // tax is not conflated with it.
  const uint64_t checkpoint_interval = static_cast<uint64_t>(
      std::max<int64_t>(0, ctx.options.checkpoint_interval));
  struct TaxRow {
    stream::WalSyncPolicy sync;
    uint64_t checkpoint_interval;
    std::string label;
  };
  const std::vector<TaxRow> tax_rows = {
      {stream::WalSyncPolicy::kNone, 0, "none"},
      {stream::WalSyncPolicy::kInterval, 0, "interval"},
      {stream::WalSyncPolicy::kEvery, 0, "every"},
      {stream::WalSyncPolicy::kInterval, checkpoint_interval,
       "interval+ckpt" + std::to_string(checkpoint_interval)},
  };
  common::TextTable tax({"configuration", "seconds", "records/s",
                         "vs plain"});
  double interval_ratio = 0.0;
  for (const TaxRow& row : tax_rows) {
    const std::string& label = row.label;
    double durable_seconds = 0.0;
    for (size_t p = 0; p < feeds.size(); ++p) {
      stream::DurableOptions durable;
      durable.wal.dir =
          (root / ("tax_" + label) / ("p" + std::to_string(p))).string();
      durable.wal.sync = row.sync;
      durable.checkpoint_interval = row.checkpoint_interval;
      durable.session = session_options;
      auto opened = stream::DurableSession::Open(durable);
      if (!opened.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      const auto t0 = Clock::now();
      for (const sim::ProvenanceRecord& record : feeds[p].records) {
        const common::Status status = opened->Ingest(record);
        if (!status.ok()) {
          std::fprintf(stderr, "error: %s\n",
                       status.ToString().c_str());
          return 1;
        }
      }
      auto result = opened->Finish();
      durable_seconds += Seconds(t0);
      if (!result.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      identical = identical &&
                  stream::FingerprintGraphlets(result->graphlets) ==
                      expected[p];
    }
    const double rate =
        durable_seconds > 0.0 ? total_records / durable_seconds : 0.0;
    const double ratio = plain_rate > 0.0 ? rate / plain_rate : 0.0;
    if (label == "interval") interval_ratio = ratio;
    tax.AddRow({label, common::TextTable::Num(durable_seconds, 3),
                common::TextTable::Num(rate, 0),
                common::TextTable::Num(ratio, 2)});
    ctx.report.Set("recovery.durable_seconds." + label, durable_seconds);
    ctx.report.Set("recovery.durable_records_per_sec." + label, rate);
    ctx.report.Set("recovery.durable_ratio." + label, ratio);
  }
  std::fputs(tax.Render().c_str(), stdout);
  std::printf(
      "durable/plain throughput at sync=interval: %.2f "
      "(acceptance: >= 0.90)\n\n",
      interval_ratio);
  ctx.report.Set("recovery.acceptance.durable_ratio_interval",
                 interval_ratio);
  ctx.report.Set("recovery.acceptance.durable_ratio_pass",
                 interval_ratio >= 0.90);

  // ---- Phase 3: recovery latency vs replayed tail. ----
  // Crash the largest pipeline at several offsets under several
  // checkpoint cadences; the recovery cost is DurableSession::Open —
  // newest checkpoint load + WAL tail replay. Interval 0 means WAL-only
  // (the whole prefix is the tail).
  size_t big = 0;
  for (size_t p = 0; p < feeds.size(); ++p) {
    if (feeds[p].records.size() > feeds[big].records.size()) big = p;
  }
  const std::vector<sim::ProvenanceRecord>& feed = feeds[big].records;
  common::TextTable lat({"checkpoint interval", "crash offset",
                         "replayed", "open ms"});
  obs::Json latency_rows = obs::Json::Array();
  for (const uint64_t interval : {uint64_t{0}, uint64_t{64},
                                  checkpoint_interval == 0
                                      ? uint64_t{256}
                                      : checkpoint_interval}) {
    for (const double frac : {0.25, 0.5, 0.75, 1.0}) {
      const uint64_t offset = std::min<uint64_t>(
          feed.size(),
          static_cast<uint64_t>(frac *
                                static_cast<double>(feed.size())));
      stream::DurableOptions durable;
      durable.wal.dir = (root / ("lat_" + std::to_string(interval) + "_" +
                                 std::to_string(offset)))
                            .string();
      durable.wal.sync = stream::WalSyncPolicy::kEvery;
      durable.checkpoint_interval = interval;
      durable.session = session_options;
      auto first = stream::DurableSession::Open(durable);
      if (!first.ok()) return 1;
      for (uint64_t i = 0; i < offset; ++i) {
        if (!first->Ingest(feed[i]).ok()) return 1;
      }
      (void)first->SimulateCrash(0);

      const auto t0 = Clock::now();
      auto recovered = stream::DurableSession::Open(durable);
      const double open_seconds = Seconds(t0);
      if (!recovered.ok()) {
        std::fprintf(stderr, "error: recovery: %s\n",
                     recovered.status().ToString().c_str());
        return 1;
      }
      for (uint64_t i = recovered->records(); i < feed.size(); ++i) {
        if (!recovered->Ingest(feed[i]).ok()) return 1;
      }
      auto result = recovered->Finish();
      if (!result.ok()) return 1;
      identical = identical &&
                  stream::FingerprintGraphlets(result->graphlets) ==
                      expected[big];
      lat.AddRow({std::to_string(interval), std::to_string(offset),
                  std::to_string(recovered->recovery().replayed_records),
                  common::TextTable::Num(open_seconds * 1e3, 2)});
      obs::Json row = obs::Json::Object();
      row.Set("checkpoint_interval", interval);
      row.Set("crash_offset", offset);
      row.Set("replayed_records",
              recovered->recovery().replayed_records);
      row.Set("open_seconds", open_seconds);
      latency_rows.Push(std::move(row));
    }
  }
  std::fputs(lat.Render().c_str(), stdout);
  std::printf("\nall runs == batch segmentation: %s\n",
              identical ? "IDENTICAL" : "MISMATCH — BUG");
  ctx.report.Set("recovery.latency", std::move(latency_rows));
  ctx.report.Set("recovery.identical", identical);

  if (!keep_wal) fs::remove_all(root, ec);
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace mlprov

int main(int argc, char** argv) { return mlprov::Run(argc, argv); }
