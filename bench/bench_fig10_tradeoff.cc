// Reproduces Figure 10(a,b): the model-freshness vs wasted-computation
// tradeoff curves from sweeping the classifier threshold, for the Table 3
// variants (a) and the ablation models (b).
#include <cstdio>

#include "bench/report_common.h"
#include "core/features.h"
#include "core/waste_mitigation.h"

namespace mlprov {
namespace {

void PrintCurve(const char* name,
                const std::vector<core::TradeoffPoint>& curve) {
  // Sample the curve at fixed waste-eliminated levels.
  std::printf("%-22s", name);
  for (double target : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    // Freshness at the first point achieving `target` waste elimination.
    double freshness = 0.0;
    for (const core::TradeoffPoint& p : curve) {
      if (p.waste_eliminated >= target) {
        freshness = p.freshness;
        break;
      }
    }
    std::printf(" %5.2f", freshness);
  }
  std::printf("\n");
}

int Run(int argc, char** argv) {
  bench::ReportContext ctx(argc, argv,
                           "Figure 10: freshness vs waste tradeoff");
  const core::SegmentedCorpus segmented = core::SegmentCorpus(ctx.corpus);
  const core::WasteDataset dataset =
      *core::BuildWasteDataset(ctx.corpus, segmented);
  core::MitigationOptions options;
  options.forest.num_trees =
      ctx.options.trees;
  core::WasteMitigation mitigation(&dataset, options);

  std::printf("model freshness when eliminating X of the wasted "
              "computation\n%-22s", "");
  for (double target : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    std::printf(" %5.2f", target);
  }
  std::printf("\n");

  common::TextTable summary({"model", "waste eliminated @ freshness 1.0",
                             "@ 0.98", "@ 0.90"});
  for (int v = 0; v < core::kNumVariants; ++v) {
    const auto variant = static_cast<core::Variant>(v);
    const core::VariantResult result = mitigation.Evaluate(variant);
    const auto curve = core::ComputeTradeoffCurve(
        result.scores, result.labels, result.costs);
    if (v == 4) std::printf("--- Fig 10(b): ablation models ---\n");
    PrintCurve(ToString(variant), curve);
    using T = common::TextTable;
    summary.AddRow({ToString(variant),
                    T::Pct(core::MaxWasteAtFreshness(curve, 1.0)),
                    T::Pct(core::MaxWasteAtFreshness(curve, 0.98)),
                    T::Pct(core::MaxWasteAtFreshness(curve, 0.90))});
    ctx.report.Set(
        std::string("waste_at_freshness_1.0.") + ToString(variant),
        core::MaxWasteAtFreshness(curve, 1.0));
    ctx.report.Set(
        std::string("waste_at_freshness_0.98.") + ToString(variant),
        core::MaxWasteAtFreshness(curve, 0.98));
  }
  std::printf("\n%s\n", summary.Render().c_str());
  std::printf(
      "paper headline: ~50%% of all wasted computation can be eliminated\n"
      "without sacrificing model freshness, and freshness collapses\n"
      "quickly past ~60%% — the curves above reproduce the knee shape,\n"
      "with the richer variants eliminating more waste at high "
      "freshness.\n");
  return 0;
}

}  // namespace
}  // namespace mlprov

int main(int argc, char** argv) { return mlprov::Run(argc, argv); }
