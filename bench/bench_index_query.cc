// Provenance-index query benchmark: latency of label-decoded closure
// queries (core::TraceQuery over the incremental index) against the
// TraceView BFS recompute a dashboard would otherwise run per request,
// plus the one-time cost of building the labels (CatchUp) and their
// memory footprint. Identity is asserted on every single query — a
// latency number for a wrong answer is worthless.
//
// Two workloads, because closure depth decides who wins:
//   * the simulated corpus, whose per-trigger subgraphs keep ancestor
//     closures at ~a window of spans (both paths run sub-microsecond;
//     the speedup is reported, not gated);
//   * a deep-lineage chain — the retraining-cascade shape where every
//     execution's closure is O(trace length) and interactive recompute
//     actually hurts. The >= 10x acceptance bar gates here.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/report_common.h"
#include "core/provenance_index.h"
#include "metadata/metadata_store.h"
#include "metadata/trace.h"
#include "stream/replay.h"
#include "stream/session.h"

namespace mlprov {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

int Run(int argc, char** argv) {
  bench::ReportContext ctx(argc, argv, "Provenance index query latency",
                           /*default_pipelines=*/12);
  // --query_sweeps=N  full all-executions query sweeps per pipeline
  //                   (more sweeps smooth scheduler noise).
  const int sweeps = static_cast<int>(
      bench::IntFlagOrDie(ctx.flags, "query_sweeps", 3));

  // Ingest every pipeline through an indexed session once (build cost
  // is timed separately below; the sessions then serve all sweeps).
  std::vector<stream::ProvenanceSession> sessions(
      ctx.corpus.pipelines.size());
  size_t total_execs = 0;
  size_t label_bytes = 0;
  for (size_t p = 0; p < ctx.corpus.pipelines.size(); ++p) {
    const common::Status replayed =
        stream::ReplayTrace(ctx.corpus.pipelines[p], sessions[p]);
    if (!replayed.ok()) {
      std::fprintf(stderr, "error: replay: %s\n",
                   replayed.ToString().c_str());
      return 1;
    }
    total_execs += sessions[p].store().num_executions();
    label_bytes += sessions[p].index().label_bytes();
  }

  // ---- Corpus ancestor closures: indexed vs BFS recompute. ----
  // Aggregate sweep timing (one clock pair per sweep): both paths run
  // well under a microsecond per query here, so per-query clocks would
  // measure the clock. Identity is still checked query by query.
  size_t queries = 0;
  bool identical = true;
  double indexed_seconds = 0.0;
  double recompute_seconds = 0.0;
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    for (auto& session : sessions) {
      const metadata::MetadataStore& store = session.store();
      metadata::TraceView view(&store);
      core::TraceQuery query = session.Query();
      const auto n =
          static_cast<metadata::ExecutionId>(store.num_executions());
      {
        const auto t0 = Clock::now();
        for (metadata::ExecutionId exec = 1; exec <= n; ++exec) {
          auto indexed = query.AncestorsOf(exec);
          identical = identical && indexed.ok();
        }
        indexed_seconds += Seconds(t0);
      }
      {
        const auto t0 = Clock::now();
        for (metadata::ExecutionId exec = 1; exec <= n; ++exec) {
          (void)view.AncestorExecutions(exec);
        }
        recompute_seconds += Seconds(t0);
      }
      for (metadata::ExecutionId exec = 1; exec <= n; ++exec) {
        auto indexed = query.AncestorsOf(exec);
        identical = identical && indexed.ok() &&
                    *indexed == view.AncestorExecutions(exec);
        ++queries;
      }
    }
  }
  const double speedup =
      indexed_seconds > 0.0 ? recompute_seconds / indexed_seconds : 0.0;
  std::printf(
      "corpus ancestor closures: %zu queries over %zu executions "
      "(%d sweep(s))\n",
      queries, total_execs, sweeps);
  std::printf("  indexed %.3fs vs recompute %.3fs -> %.1fx "
              "(shallow closures; reported, not gated)\n",
              indexed_seconds, recompute_seconds, speedup);
  std::printf("  indexed == recompute on every query: %s\n\n",
              identical ? "IDENTICAL" : "MISMATCH — BUG");
  ctx.report.Set("index_query.queries", static_cast<int64_t>(queries));
  ctx.report.Set("index_query.indexed_seconds", indexed_seconds);
  ctx.report.Set("index_query.recompute_seconds", recompute_seconds);
  ctx.report.Set("index_query.speedup", speedup);
  ctx.report.Set("index_query.identical", identical);

  // ---- Descendant queries: the column scan vs the BFS walk. ----
  bool desc_identical = true;
  double desc_indexed_seconds = 0.0;
  double desc_recompute_seconds = 0.0;
  for (auto& session : sessions) {
    const metadata::MetadataStore& store = session.store();
    metadata::TraceView view(&store);
    core::TraceQuery query = session.Query();
    const auto n =
        static_cast<metadata::ExecutionId>(store.num_executions());
    {
      const auto t0 = Clock::now();
      for (metadata::ExecutionId exec = 1; exec <= n; ++exec) {
        auto got = query.DescendantsOf(exec);
        desc_identical = desc_identical && got.ok();
      }
      desc_indexed_seconds += Seconds(t0);
    }
    {
      const auto t0 = Clock::now();
      for (metadata::ExecutionId exec = 1; exec <= n; ++exec) {
        (void)view.DescendantExecutions(exec);
      }
      desc_recompute_seconds += Seconds(t0);
    }
    for (metadata::ExecutionId exec = 1; exec <= n; ++exec) {
      auto got = query.DescendantsOf(exec);
      desc_identical = desc_identical && got.ok() &&
                       *got == view.DescendantExecutions(exec);
    }
  }
  const double desc_speedup = desc_indexed_seconds > 0.0
                                  ? desc_recompute_seconds /
                                        desc_indexed_seconds
                                  : 0.0;
  std::printf("descendants: indexed %.3fs vs recompute %.3fs "
              "-> %.1fx; identical: %s\n\n",
              desc_indexed_seconds, desc_recompute_seconds, desc_speedup,
              desc_identical ? "yes" : "MISMATCH — BUG");
  ctx.report.Set("index_query.desc_speedup", desc_speedup);
  ctx.report.Set("index_query.desc_identical", desc_identical);

  // ---- Deep-lineage chain: where interactive recompute hurts. ----
  // Every execution consumes its `--chain_window` predecessors'
  // outputs, so the ancestor closure of execution i is all of 1..i-1 —
  // the retraining-cascade shape. Mean closure is chain_execs/2; the
  // BFS pays queue + adjacency + visited per closure node on every
  // query, the index decodes 64 labels per word. This phase carries the
  // >= 10x acceptance bar.
  const auto chain_execs = static_cast<metadata::ExecutionId>(
      bench::IntFlagOrDie(ctx.flags, "chain_execs", 4000));
  const auto chain_window =
      bench::IntFlagOrDie(ctx.flags, "chain_window", 8);
  metadata::MetadataStore chain;
  for (metadata::ExecutionId i = 1; i <= chain_execs; ++i) {
    metadata::Execution e;
    e.type = metadata::ExecutionType::kTransform;
    e.start_time = i * 100;
    e.end_time = i * 100 + 50;
    const metadata::ExecutionId id = chain.PutExecution(e);
    for (int64_t back = 1; back <= chain_window && back < id; ++back) {
      // Artifact ids mirror execution ids: exec k outputs artifact k.
      const metadata::Event in{id, static_cast<metadata::ArtifactId>(
                                       id - back),
                               metadata::EventKind::kInput, e.start_time};
      if (!chain.PutEvent(in).ok()) return 1;
    }
    metadata::Artifact a;
    a.type = metadata::ArtifactType::kCustom;
    a.create_time = e.end_time;
    const metadata::ArtifactId out_id = chain.PutArtifact(a);
    const metadata::Event out{id, out_id, metadata::EventKind::kOutput,
                              e.end_time};
    if (!chain.PutEvent(out).ok()) return 1;
  }
  core::ProvenanceIndex chain_index(&chain);
  const auto b0 = Clock::now();
  chain_index.CatchUp();
  const double chain_build_seconds = Seconds(b0);
  core::TraceQuery chain_query(&chain, &chain_index);
  metadata::TraceView chain_view(&chain);
  bool chain_identical = true;
  double chain_indexed_seconds = 0.0;
  double chain_recompute_seconds = 0.0;
  {
    const auto t0 = Clock::now();
    for (metadata::ExecutionId exec = 1; exec <= chain_execs; ++exec) {
      auto got = chain_query.AncestorsOf(exec);
      chain_identical = chain_identical && got.ok();
    }
    chain_indexed_seconds = Seconds(t0);
  }
  {
    const auto t0 = Clock::now();
    for (metadata::ExecutionId exec = 1; exec <= chain_execs; ++exec) {
      (void)chain_view.AncestorExecutions(exec);
    }
    chain_recompute_seconds = Seconds(t0);
  }
  // Identity pass, outside the timed loops.
  for (metadata::ExecutionId exec = 1; exec <= chain_execs; ++exec) {
    auto got = chain_query.AncestorsOf(exec);
    chain_identical = chain_identical && got.ok() &&
                      *got == chain_view.AncestorExecutions(exec);
  }
  const double chain_speedup =
      chain_indexed_seconds > 0.0
          ? chain_recompute_seconds / chain_indexed_seconds
          : 0.0;
  std::printf(
      "deep-lineage chain (%lld executions, window %lld): "
      "labels built in %.3fs\n",
      static_cast<long long>(chain_execs),
      static_cast<long long>(chain_window), chain_build_seconds);
  std::printf(
      "  ancestor closures: indexed %.3fs vs recompute %.3fs -> %.1fx "
      "(acceptance: >= 10x)\n",
      chain_indexed_seconds, chain_recompute_seconds, chain_speedup);
  std::printf("  indexed == recompute on every query: %s\n\n",
              chain_identical ? "IDENTICAL" : "MISMATCH — BUG");
  ctx.report.Set("index_query.chain_execs",
                 static_cast<int64_t>(chain_execs));
  ctx.report.Set("index_query.chain_build_seconds", chain_build_seconds);
  ctx.report.Set("index_query.chain_indexed_seconds",
                 chain_indexed_seconds);
  ctx.report.Set("index_query.chain_recompute_seconds",
                 chain_recompute_seconds);
  ctx.report.Set("index_query.chain_speedup", chain_speedup);
  ctx.report.Set("index_query.chain_identical", chain_identical);

  // ---- Build cost and footprint of the labels themselves. ----
  double catchup_seconds = 0.0;
  for (auto& session : sessions) {
    core::ProvenanceIndex fresh(&session.store());
    const auto t0 = Clock::now();
    fresh.CatchUp();
    catchup_seconds += Seconds(t0);
  }
  std::printf(
      "labels: %.1f MiB for %zu executions (%.1f bytes/exec); "
      "batch CatchUp rebuild %.3fs across %zu pipelines\n",
      static_cast<double>(label_bytes) / (1024.0 * 1024.0), total_execs,
      total_execs > 0
          ? static_cast<double>(label_bytes) /
                static_cast<double>(total_execs)
          : 0.0,
      catchup_seconds, sessions.size());
  ctx.report.Set("index_query.label_bytes",
                 static_cast<int64_t>(label_bytes));
  ctx.report.Set("index_query.executions",
                 static_cast<int64_t>(total_execs));
  ctx.report.Set("index_query.catchup_seconds", catchup_seconds);
  return (identical && desc_identical && chain_identical) ? 0 : 1;
}

}  // namespace
}  // namespace mlprov

int main(int argc, char** argv) { return mlprov::Run(argc, argv); }
