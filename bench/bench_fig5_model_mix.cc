// Reproduces Figure 5: percentage of Trainer runs with each model type.
#include <cstdio>

#include "bench/report_common.h"
#include "core/pipeline_analysis.h"

namespace mlprov {
namespace {

int Run(int argc, char** argv) {
  bench::ReportContext ctx(argc, argv, "Figure 5: model diversity");
  const core::ModelDiversityStats stats =
      core::ComputeModelDiversity(ctx.corpus);

  // Paper values read from Figure 5 (DNN and DNN+Linear quoted exactly).
  const char* paper[] = {"64%", "~16%", "2%", "~10%", "~4%", "~4%"};
  using T = common::TextTable;
  T table({"model type", "paper (share of trainer runs)", "measured"});
  for (int t = 0; t < metadata::kNumModelTypes; ++t) {
    table.AddRow({metadata::ToString(static_cast<metadata::ModelType>(t)),
                  paper[t],
                  T::Pct(stats.Share(
                      static_cast<metadata::ModelType>(t)))});
    ctx.report.Set(
        std::string("share.") +
            metadata::ToString(static_cast<metadata::ModelType>(t)),
        stats.Share(static_cast<metadata::ModelType>(t)));
  }
  std::printf("%s\ntotal trainer runs: %zu\n", table.Render().c_str(),
              stats.total_runs);
  ctx.report.Set("total_trainer_runs",
                 static_cast<int64_t>(stats.total_runs));
  return 0;
}

}  // namespace
}  // namespace mlprov

int main(int argc, char** argv) { return mlprov::Run(argc, argv); }
