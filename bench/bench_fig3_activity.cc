// Reproduces Figure 3(a,b,d,e): pipeline lifespan and training cadence,
// overall and by model class.
#include <cstdio>

#include "bench/report_common.h"
#include "core/pipeline_analysis.h"

namespace mlprov {
namespace {

int Run(int argc, char** argv) {
  bench::ReportContext ctx(argc, argv,
                           "Figure 3(a,b,d,e): pipeline activity");
  const core::ActivityStats stats = core::ComputeActivity(ctx.corpus);

  common::TextTable summary(
      {"metric", "paper", "measured"});
  summary.AddRow({"mean lifespan (days)", "36",
                  common::TextTable::Num(common::Mean(stats.lifespan_days),
                                         1)});
  summary.AddRow({"max lifespan (days)", "130",
                  common::TextTable::Num(
                      common::Quantile(stats.lifespan_days, 1.0), 1)});
  summary.AddRow({"mean models/day", "~7",
                  common::TextTable::Num(
                      common::Mean(stats.models_per_day), 2)});
  summary.AddRow({"median models/day", "~1",
                  common::TextTable::Num(
                      common::Median(stats.models_per_day), 2)});
  double over100 = 0;
  for (double c : stats.models_per_day) over100 += c > 100.0 ? 1.0 : 0.0;
  summary.AddRow(
      {"pipelines >100 models/day", "1.12%",
       common::TextTable::Pct(
           over100 / static_cast<double>(stats.models_per_day.size()), 2)});
  summary.AddRow({"max trace nodes", "6953",
                  std::to_string(stats.max_trace_nodes)});
  std::printf("%s\n", summary.Render().c_str());

  common::Histogram lifespan = common::Histogram::Linear(0, 130, 13);
  lifespan.AddN(stats.lifespan_days);
  std::printf("%s\n",
              lifespan.Render("Fig 3(a): pipeline lifespan (days)").c_str());
  common::Histogram cadence = common::Histogram::Log10(0.02, 1000, 12);
  cadence.AddN(stats.models_per_day);
  std::printf(
      "%s\n",
      cadence.Render("Fig 3(b): models trained per day (log bins)").c_str());

  common::TextTable by_class({"class", "pipelines", "mean lifespan (d)",
                              "median cadence (/day)", "p99 cadence"});
  for (int c = 0; c < core::kNumModelClasses; ++c) {
    const auto& lifespans =
        stats.lifespan_by_class[static_cast<size_t>(c)];
    const auto& cadences = stats.cadence_by_class[static_cast<size_t>(c)];
    by_class.AddRow(
        {core::ToString(static_cast<core::ModelClass>(c)),
         std::to_string(lifespans.size()),
         common::TextTable::Num(common::Mean(lifespans), 1),
         common::TextTable::Num(common::Median(cadences), 2),
         common::TextTable::Num(common::Quantile(cadences, 0.99), 1)});
  }
  std::printf("Fig 3(d,e): by model class (paper: Linear pipelines live "
              "longer than DNN;\nDNN cadence is the most diverse)\n%s\n",
              by_class.Render().c_str());
  ctx.report.Set("mean_lifespan_days", common::Mean(stats.lifespan_days));
  ctx.report.Set("max_lifespan_days",
                 common::Quantile(stats.lifespan_days, 1.0));
  ctx.report.Set("mean_models_per_day",
                 common::Mean(stats.models_per_day));
  ctx.report.Set("median_models_per_day",
                 common::Median(stats.models_per_day));
  ctx.report.Set(
      "frac_over_100_models_per_day",
      over100 / static_cast<double>(stats.models_per_day.size()));
  ctx.report.Set("max_trace_nodes",
                 static_cast<int64_t>(stats.max_trace_nodes));
  return 0;
}

}  // namespace
}  // namespace mlprov

int main(int argc, char** argv) { return mlprov::Run(argc, argv); }
