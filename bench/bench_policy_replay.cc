// Scheduler-policy replay (Section 5.3.2, system view): applies each
// trained variant as a skip-below-threshold admission policy over the
// held-out graphlets with full cost accounting — a skipped graphlet still
// pays the pipeline cost up to the variant's intervention point. This is
// the experiment behind the paper's conclusion that RF:Input+Pre+Trainer,
// despite leading in accuracy, "is not as effective from a cost saving
// perspective".
#include <cstdio>

#include "bench/report_common.h"
#include "core/features.h"
#include "core/waste_mitigation.h"

namespace mlprov {
namespace {

int Run(int argc, char** argv) {
  bench::ReportContext ctx(argc, argv,
                           "Section 5.3.2: scheduler policy replay");
  const core::SegmentedCorpus segmented = core::SegmentCorpus(ctx.corpus);
  const core::WasteDataset dataset =
      *core::BuildWasteDataset(ctx.corpus, segmented);
  core::MitigationOptions options;
  options.forest.num_trees =
      ctx.options.trees;
  core::WasteMitigation mitigation(&dataset, options);

  using T = common::TextTable;
  T table({"policy", "threshold", "skipped", "net compute savings",
           "freshness"});
  table.AddRow({"run everything (baseline)", "-", "0", "0.0%", "1.00"});
  for (core::Variant variant :
       {core::Variant::kInput, core::Variant::kInputPre,
        core::Variant::kInputPreTrainer, core::Variant::kValidation}) {
    const core::VariantResult result = mitigation.Evaluate(variant);
    // Two operating points per variant: the train-chosen threshold and a
    // conservative half of it.
    for (double scale : {1.0, 0.5}) {
      const double threshold = result.threshold * scale;
      const core::PolicyOutcome outcome =
          core::ReplayPolicy(dataset, mitigation, result, threshold);
      table.AddRow({std::string(ToString(variant)) +
                        (scale < 1.0 ? " (conservative)" : ""),
                    T::Num(threshold, 2),
                    std::to_string(outcome.graphlets_skipped),
                    T::Pct(outcome.net_savings),
                    T::Num(outcome.freshness, 3)});
      const std::string suffix =
          std::string(ToString(variant)) +
          (scale < 1.0 ? " (conservative)" : "");
      ctx.report.Set("net_savings." + suffix, outcome.net_savings);
      ctx.report.Set("freshness." + suffix, outcome.freshness);
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "paper's takeaway reproduced: later intervention points classify\n"
      "better but abort later, so their *net* savings lag the cheaper\n"
      "variants — the feature cost of RF:Input+Pre+Trainer is not repaid\n"
      "by its accuracy edge, and RF:Validation (which must run the whole\n"
      "graphlet to observe validation shape) cannot save anything at\n"
      "all despite near-oracular accuracy.\n");
  return 0;
}

}  // namespace
}  // namespace mlprov

int main(int argc, char** argv) { return mlprov::Run(argc, argv); }
