// Reproduces Figure 9(a-f) and the Section 4.3.2 waste estimate: cadence
// of model training vs pushing, graphlet durations and costs, and push
// likelihood by model type.
#include <cstdio>

#include "bench/report_common.h"

namespace mlprov {
namespace {

int Run(int argc, char** argv) {
  bench::ReportContext ctx(argc, argv,
                           "Figure 9 / Section 4.3: push analysis");
  const core::SegmentedCorpus segmented = core::SegmentCorpus(ctx.corpus);
  const core::PushStats stats = core::ComputePushStats(segmented);
  using T = common::TextTable;

  T summary({"metric", "paper", "measured"});
  summary.AddRow({"unpushed graphlet fraction", "~80%",
                  T::Pct(stats.UnpushedFraction())});
  summary.AddRow({"mean gap, all graphlets (h)", "~25 (Fig 9a)",
                  T::Num(common::Mean(stats.gap_hours_all), 1)});
  summary.AddRow({"mean gap, pushed graphlets (h)", "~40 (+15h upshift)",
                  T::Num(common::Mean(stats.gap_hours_pushed), 1)});
  summary.AddRow(
      {"graphlets between pushes", "~3 (most 1-10)",
       T::Num(common::Mean(stats.graphlets_between_pushes), 2)});
  summary.AddRow({"mean trainer cost, pushed", "lower",
                  T::Num(common::Mean(stats.train_cost_pushed), 2)});
  summary.AddRow({"mean trainer cost, unpushed", "higher (Fig 9d)",
                  T::Num(common::Mean(stats.train_cost_unpushed), 2)});
  summary.AddRow({"mean graphlet duration (h)", "168 (Fig 9e)",
                  T::Num(common::Mean(stats.duration_hours), 1)});
  std::printf("%s\n", summary.Render().c_str());

  common::Histogram gaps = common::Histogram::Log10(0.1, 2000, 10);
  gaps.AddN(stats.gap_hours_all);
  std::printf("%s\n",
              gaps.Render("Fig 9(a): avg hours between consecutive "
                          "graphlets (per pipeline, log bins)")
                  .c_str());
  common::Histogram pushed_gaps = common::Histogram::Log10(0.1, 2000, 10);
  pushed_gaps.AddN(stats.gap_hours_pushed);
  std::printf("%s\n",
              pushed_gaps
                  .Render("Fig 9(a/b): avg hours between consecutive "
                          "PUSHED graphlets")
                  .c_str());
  common::Histogram between = common::Histogram::Linear(0, 20, 10);
  between.AddN(stats.graphlets_between_pushes);
  std::printf(
      "%s\n",
      between.Render("Fig 9(c): unpushed graphlets between pushes").c_str());
  common::Histogram durations = common::Histogram::Log10(0.1, 2000, 10);
  durations.AddN(stats.duration_hours);
  std::printf(
      "%s\n",
      durations.Render("Fig 9(e): graphlet duration (hours, log bins)")
          .c_str());

  T by_type({"model type", "graphlets", "push likelihood (paper: all <0.6,"
             " highly variable)"});
  for (int t = 0; t < metadata::kNumModelTypes; ++t) {
    const auto idx = static_cast<size_t>(t);
    by_type.AddRow({metadata::ToString(static_cast<metadata::ModelType>(t)),
                    std::to_string(stats.graphlets_by_type[idx]),
                    T::Num(stats.push_rate_by_type[idx], 3)});
  }
  std::printf("Fig 9(f):\n%s\n", by_type.Render().c_str());

  const core::WasteEstimate waste =
      core::EstimateWaste(ctx.corpus, segmented);
  T waste_table({"Section 4.3.2 estimate", "paper", "measured"});
  waste_table.AddRow({"unpushed share of compute", "~80% upper bound",
                      T::Pct(waste.unpushed_cost_fraction)});
  waste_table.AddRow({"warm-start graphlet share", "9%",
                      T::Pct(waste.warmstart_graphlet_share)});
  waste_table.AddRow({"conservative waste lower bound", ">30%",
                      T::Pct(waste.conservative_waste)});
  std::printf("%s\n", waste_table.Render().c_str());
  ctx.report.Set("unpushed_graphlet_fraction", stats.UnpushedFraction());
  ctx.report.Set("mean_gap_hours_all", common::Mean(stats.gap_hours_all));
  ctx.report.Set("mean_gap_hours_pushed",
                 common::Mean(stats.gap_hours_pushed));
  ctx.report.Set("mean_graphlets_between_pushes",
                 common::Mean(stats.graphlets_between_pushes));
  ctx.report.Set("mean_duration_hours",
                 common::Mean(stats.duration_hours));
  ctx.report.Set("unpushed_cost_fraction", waste.unpushed_cost_fraction);
  ctx.report.Set("warmstart_graphlet_share",
                 waste.warmstart_graphlet_share);
  ctx.report.Set("conservative_waste", waste.conservative_waste);
  return 0;
}

}  // namespace
}  // namespace mlprov

int main(int argc, char** argv) { return mlprov::Run(argc, argv); }
