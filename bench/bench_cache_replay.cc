// Section 6 "reducing redundant computation": replays corpus generation
// under execution memoization and reports machine-hours saved versus the
// no-cache baseline, across an LRU capacity sweep plus the unbounded
// upper bound. The redundancy the cache exploits is the paper's own:
// stale retrains on unchanged windows, debugging re-analysis, parallel
// A/B trainers, and per-span analyzer accumulators shared by overlapping
// rolling windows (tf.Transform-style partial reuse).
//
// Note: the standard --cache_policy flag is ignored here — this bench
// runs its own policy sweep on the same corpus config, so the final
// report's top-level "cache" object aggregates registry tallies across
// every sweep run.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/report_common.h"
#include "core/pipeline_analysis.h"
#include "simulator/execution_cache.h"

namespace mlprov {
namespace {

struct CacheTallies {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t partial_hits = 0;
  double saved_hours = 0.0;
};

CacheTallies ReadTallies() {
  auto& r = obs::Registry::Global();
  return {r.GetCounter("cache.hits")->Value(),
          r.GetCounter("cache.misses")->Value(),
          r.GetCounter("cache.evictions")->Value(),
          r.GetCounter("cache.partial_hits")->Value(),
          r.GetGauge("cache.saved_hours")->Value()};
}

CacheTallies Delta(const CacheTallies& before, const CacheTallies& after) {
  return {after.hits - before.hits, after.misses - before.misses,
          after.evictions - before.evictions,
          after.partial_hits - before.partial_hits,
          after.saved_hours - before.saved_hours};
}

double TotalComputeHours(const sim::Corpus& corpus) {
  return core::ComputeResourceCost(corpus).total;
}

int Run(int argc, char** argv) {
  bench::ReportContext ctx(argc, argv,
                           "Execution memoization: saved compute replay");

  // Baseline machine-hours with memoization off. ReportContext already
  // generated ctx.corpus; reuse it unless a --cache_policy flag made it
  // non-baseline.
  sim::CorpusConfig base_config = ctx.config;
  base_config.cache_policy = sim::CachePolicy::kOff;
  const double baseline_hours =
      ctx.config.cache_policy == sim::CachePolicy::kOff
          ? TotalComputeHours(ctx.corpus)
          : TotalComputeHours(sim::GenerateCorpus(base_config));
  std::printf("baseline (cache off): %.0f machine-hours\n\n",
              baseline_hours);
  ctx.report.Set("baseline_hours", baseline_hours);

  struct SweepPoint {
    std::string label;
    sim::CachePolicy policy;
    int capacity;
  };
  std::vector<SweepPoint> sweep = {
      {"lru_16", sim::CachePolicy::kLru, 16},
      {"lru_64", sim::CachePolicy::kLru, 64},
      {"lru_256", sim::CachePolicy::kLru, 256},
      {"lru_1024", sim::CachePolicy::kLru, 1024},
      {"unbounded", sim::CachePolicy::kUnbounded, 0},
  };

  using T = common::TextTable;
  T table({"policy", "capacity", "hits", "partial", "evictions",
           "saved hours", "saved %"});
  double unbounded_saved_fraction = 0.0;
  for (const SweepPoint& point : sweep) {
    sim::CorpusConfig config = base_config;
    config.cache_policy = point.policy;
    if (point.capacity > 0) config.cache_capacity = point.capacity;
    const CacheTallies before = ReadTallies();
    const sim::Corpus corpus = sim::GenerateCorpus(config);
    const CacheTallies tallies = Delta(before, ReadTallies());
    const double hours = TotalComputeHours(corpus);
    // Cross-check: the hours the cache credited must equal the drop in
    // the corpus's recorded compute cost (both come from the same
    // deterministic replay; they can only disagree if accounting drifts).
    const double saved_fraction =
        baseline_hours > 0.0 ? 1.0 - hours / baseline_hours : 0.0;
    table.AddRow({std::string(sim::ToString(point.policy)),
                  point.capacity > 0 ? std::to_string(point.capacity)
                                     : std::string("-"),
                  std::to_string(tallies.hits),
                  std::to_string(tallies.partial_hits),
                  std::to_string(tallies.evictions),
                  T::Num(baseline_hours - hours, 0),
                  T::Pct(saved_fraction)});
    ctx.report.Set(point.label + ".hits", tallies.hits);
    ctx.report.Set(point.label + ".misses", tallies.misses);
    ctx.report.Set(point.label + ".evictions", tallies.evictions);
    ctx.report.Set(point.label + ".partial_hits", tallies.partial_hits);
    ctx.report.Set(point.label + ".saved_hours", baseline_hours - hours);
    ctx.report.Set(point.label + ".saved_fraction", saved_fraction);
    if (obs::kMetricsEnabled) {
      ctx.report.Set(point.label + ".credited_saved_hours",
                     tallies.saved_hours);
    }
    if (point.policy == sim::CachePolicy::kUnbounded) {
      unbounded_saved_fraction = saved_fraction;
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "memoization upper bound (unbounded cache): %s of all compute "
      "hours are redundant re-executions\n",
      T::Pct(unbounded_saved_fraction).c_str());
  ctx.report.Set("saved_fraction_unbounded", unbounded_saved_fraction);
  return 0;
}

}  // namespace
}  // namespace mlprov

int main(int argc, char** argv) { return mlprov::Run(argc, argv); }
