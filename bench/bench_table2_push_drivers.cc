// Reproduces Table 2: input-data similarity and code match vs the
// immediately preceding graphlet, split by push outcome — the paper's
// evidence that neither data drift nor code change alone explains
// unpushed graphlets.
#include <cstdio>

#include "bench/report_common.h"

namespace mlprov {
namespace {

int Run(int argc, char** argv) {
  bench::ReportContext ctx(argc, argv, "Table 2: push vs drift and code",
                           400);
  const core::SegmentedCorpus segmented = core::SegmentCorpus(ctx.corpus);
  const core::PushDriverStats stats =
      *core::ComputePushDrivers(ctx.corpus, segmented);

  using T = common::TextTable;
  T table({"", "mu_pushed", "mu_unpushed", "mu (all)"});
  table.AddRow({"Input data similarity (paper)", "0.109", "0.099", "0.101"});
  table.AddRow({"Input data similarity (measured)",
                T::Num(stats.input_similarity_pushed, 3),
                T::Num(stats.input_similarity_unpushed, 3),
                T::Num(stats.input_similarity_all, 3)});
  table.AddRow({"Code match (paper)", "0.838", "0.846", "0.845"});
  table.AddRow({"Code match (measured)",
                T::Num(stats.code_match_pushed, 3),
                T::Num(stats.code_match_unpushed, 3),
                T::Num(stats.code_match_all, 3)});
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "reproduced property: no large marginal difference between pushed\n"
      "and unpushed graphlets on either signal — single-signal heuristics\n"
      "cannot explain push outcomes (Section 4.3.2 hypotheses 3 and 4).\n");
  ctx.report.Set("input_similarity_pushed", stats.input_similarity_pushed);
  ctx.report.Set("input_similarity_unpushed",
                 stats.input_similarity_unpushed);
  ctx.report.Set("input_similarity_all", stats.input_similarity_all);
  ctx.report.Set("code_match_pushed", stats.code_match_pushed);
  ctx.report.Set("code_match_unpushed", stats.code_match_unpushed);
  ctx.report.Set("code_match_all", stats.code_match_all);
  return 0;
}

}  // namespace
}  // namespace mlprov

int main(int argc, char** argv) { return mlprov::Run(argc, argv); }
