// Microbenchmarks for the provenance substrate: metadata-store writes,
// trace traversal, and the two graphlet-segmentation implementations —
// the optimized BFS path vs the Appendix A datalog reference (the
// ablation called out in DESIGN.md).
#include <benchmark/benchmark.h>

#include "bench/micro_common.h"
#include "core/segmentation.h"
#include "metadata/serialization.h"
#include "metadata/trace.h"
#include "simulator/pipeline_simulator.h"

namespace mlprov {
namespace {

sim::PipelineTrace MakeTrace(double days, double rate) {
  sim::CorpusConfig corpus;
  common::Rng rng(11);
  sim::PipelineConfig config = sim::SamplePipelineConfig(corpus, 0, rng);
  config.lifespan_days = days;
  config.triggers_per_day = rate;
  config.warm_start = false;
  return sim::SimulatePipeline(corpus, config, sim::CostModel());
}

void BM_StorePutEventChain(benchmark::State& state) {
  for (auto _ : state) {
    metadata::MetadataStore store;
    for (int i = 0; i < 1000; ++i) {
      const auto e = store.PutExecution({});
      const auto a = store.PutArtifact({});
      benchmark::DoNotOptimize(
          store.PutEvent({e, a, metadata::EventKind::kOutput, 0}));
    }
  }
}
BENCHMARK(BM_StorePutEventChain);

void BM_TraceTopologicalOrder(benchmark::State& state) {
  const sim::PipelineTrace trace = MakeTrace(20, 4);
  metadata::TraceView view(&trace.store);
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.TopologicalOrder());
  }
}
BENCHMARK(BM_TraceTopologicalOrder);

void BM_SegmentTraceFast(benchmark::State& state) {
  const sim::PipelineTrace trace =
      MakeTrace(static_cast<double>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SegmentTrace(trace.store));
  }
  state.counters["graphlets"] = static_cast<double>(
      core::SegmentTrace(trace.store).size());
}
BENCHMARK(BM_SegmentTraceFast)->Arg(10)->Arg(40);

void BM_SegmentTraceDatalog(benchmark::State& state) {
  // The datalog reference re-derives the fixpoint per trainer; keep the
  // trace small so the benchmark stays responsive.
  const sim::PipelineTrace trace = MakeTrace(4, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SegmentTraceDatalog(trace.store));
  }
}
BENCHMARK(BM_SegmentTraceDatalog);

void BM_SerializeStore(benchmark::State& state) {
  const sim::PipelineTrace trace = MakeTrace(20, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(metadata::SerializeStore(trace.store));
  }
}
BENCHMARK(BM_SerializeStore);

void BM_DeserializeStore(benchmark::State& state) {
  const sim::PipelineTrace trace = MakeTrace(20, 4);
  const std::string text = metadata::SerializeStore(trace.store);
  for (auto _ : state) {
    auto result = metadata::DeserializeStore(text);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DeserializeStore);

}  // namespace
}  // namespace mlprov

MLPROV_MICROBENCH_MAIN();
